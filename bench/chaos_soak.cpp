//===- bench/chaos_soak.cpp - Seeded fault-injection soak -----------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness soak for the DBT engine: runs hundreds of seeded
/// fault-injection campaigns (chaos::FaultPlan::randomized) across all
/// five MDA policies and several engine configurations, and checks the
/// graceful-degradation contract on every run:
///
///   - a run that reports success must reproduce the fault-free
///     baseline's Checksum and MemoryHash bit-exactly;
///   - a run that does not succeed must report a *typed* RunError other
///     than MonitorStepLimit — hitting the step guard under injection
///     means the degradation ladder failed to contain a livelock
///     (an engine wedge), which fails the soak.
///
/// Registered as a ctest target; MDABT_CHAOS_CAMPAIGNS overrides the
/// campaign count (default 250).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "chaos/FaultPlan.h"

#include <cinttypes>
#include <string>
#include <vector>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

struct PolicyCase {
  const char *Label;
  mda::PolicySpec Spec;
};

/// One row of the survival report.
struct PolicyTally {
  uint64_t Campaigns = 0;
  uint64_t Survived = 0;  ///< completed, checksum+memhash match baseline
  uint64_t Degraded = 0;  ///< typed abort (TrapStorm/PatchFailed/...)
  uint64_t Wedged = 0;    ///< MonitorStepLimit under injection
  uint64_t Corrupt = 0;   ///< completed but diverged from baseline
  uint64_t Injected = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t InterpPins = 0;
  uint64_t ByError[dbt::NumRunErrors] = {};
};

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Chaos soak: seeded fault-injection campaigns against every MDA "
         "policy",
         "every campaign either survives bit-exactly or aborts with a "
         "typed RunError; zero wedges, zero silent corruption");

  uint64_t Campaigns = 250;
  if (const char *Env = std::getenv("MDABT_CHAOS_CAMPAIGNS")) {
    long long V = std::atoll(Env);
    if (V > 0)
      Campaigns = static_cast<uint64_t>(V);
  }

  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 30000;

  const PolicyCase Cases[] = {
      {"direct", {mda::MechanismKind::Direct, 0, false, 0, false}},
      {"static", {mda::MechanismKind::StaticProfiling, 0, false, 0, false}},
      {"dyn@50", {mda::MechanismKind::DynamicProfiling, 50, false, 0, false}},
      {"eh+rearrange",
       {mda::MechanismKind::ExceptionHandling, 50, true, 0, false}},
      {"dpeh+retrans4", {mda::MechanismKind::Dpeh, 50, false, 4, false}},
  };
  constexpr size_t NumCases = sizeof(Cases) / sizeof(Cases[0]);

  const workloads::BenchmarkInfo *Progs[] = {
      workloads::findBenchmark("470.lbm"),
      workloads::findBenchmark("410.bwaves"),
  };
  constexpr size_t NumProgs = sizeof(Progs) / sizeof(Progs[0]);
  for (const workloads::BenchmarkInfo *P : Progs) {
    if (!P) {
      std::fprintf(stderr, "error: soak benchmark missing from catalog\n");
      return 1;
    }
  }

  // Fault-free baselines: every policy must agree on the observable
  // final state of each program — that shared state is the ground truth
  // the chaos runs are checked against.
  struct Baseline {
    uint64_t Checksum = 0;
    uint64_t MemoryHash = 0;
  };
  // The baseline runs are themselves independent; fan them out too.
  std::vector<dbt::RunResult> BaseRuns(NumProgs * NumCases);
  parallelFor(Opt.Jobs, BaseRuns.size(), [&](size_t I) {
    size_t P = I / NumCases;
    size_t C = I % NumCases;
    // Fault-free baselines run with the verifier too: a verifier that
    // flags clean runs would poison the whole soak.
    dbt::EngineConfig BaseConfig;
    BaseConfig.Verify = true;
    BaseRuns[I] =
        reporting::runPolicy(*Progs[P], Cases[C].Spec, Scale, BaseConfig);
  });
  Baseline Base[NumProgs];
  for (size_t P = 0; P != NumProgs; ++P) {
    for (size_t C = 0; C != NumCases; ++C) {
      const dbt::RunResult &R = BaseRuns[P * NumCases + C];
      reporting::checkRunCompleted(
          R, std::string(Progs[P]->Name) + " fault-free baseline (" +
                 Cases[C].Label + ")");
      if (C == 0) {
        Base[P].Checksum = R.Checksum;
        Base[P].MemoryHash = R.MemoryHash;
      } else if (R.Checksum != Base[P].Checksum ||
                 R.MemoryHash != Base[P].MemoryHash) {
        std::fprintf(stderr,
                     "error: fault-free baselines disagree on %s (%s)\n",
                     Progs[P]->Name, Cases[C].Label);
        return 1;
      }
    }
  }

  // Every campaign's fault plan is derived from (base seed, index), so
  // the campaigns are shared-nothing and can run in any order; the tally
  // below walks the index-addressed results serially, keeping the report
  // and every stderr diagnostic in campaign order regardless of --jobs.
  std::vector<dbt::RunResult> Runs(Campaigns);
  parallelFor(Opt.Jobs, Campaigns, [&](size_t I) {
    size_t P = static_cast<size_t>(I % NumProgs);
    size_t C = static_cast<size_t>((I / NumProgs) % NumCases);
    chaos::FaultPlan Plan =
        chaos::FaultPlan::randomized(Opt.Seed * 1000003 + I);

    dbt::EngineConfig Config;
    // A wedge (uncontained livelock) must surface quickly as
    // MonitorStepLimit instead of hanging the soak.
    Config.MaxMonitorSteps = 500'000;
    Config.Chaos = &Plan;
    // The code-cache verifier runs on every campaign: injected faults
    // that leave the cache structurally malformed must be caught as a
    // typed VerifyFailed abort, never as silent corruption.
    Config.Verify = true;
    // Rotate through the cache configurations that stress the flush and
    // supersede paths.
    switch (I % 4) {
    case 1:
      Config.CodeCacheLimitWords = 256;
      break;
    case 2:
      Config.CodeCacheLimitWords = 2000;
      break;
    case 3:
      Config.FlushOnSupersede = true;
      break;
    default:
      break;
    }
    // Rotate the hot-dispatch mechanisms in as well (coprime with the
    // cache rotation above, so the combinations cross-product): inline
    // caches and trace formation add patch surface the injector can
    // tear, and the dispatch table must stay coherent through chaos
    // flushes.  Architectural identity across dispatch configs means
    // the fault-free baselines above stay valid ground truth.
    switch (I % 3) {
    case 1:
      Config.HashDispatch = true;
      Config.InlineCaches = true;
      break;
    case 2:
      Config.HashDispatch = true;
      Config.InlineCaches = true;
      Config.Superblocks = true;
      break;
    default:
      break;
    }
    // Every fifth campaign runs with tight tolerance ceilings so the
    // typed-abort paths (PatchFailed/TranslationFailed/CacheThrash) are
    // exercised, not just the unlimited-degradation paths.
    if (I % 5 == 4) {
      Config.Hardening.PatchFailureLimit = 8;
      Config.Hardening.TranslationFailureLimit = 64;
      Config.Hardening.FlushLimit = 32;
      Config.Hardening.MaxWatchdogTrips = 64;
    }

    Runs[I] = reporting::runPolicy(*Progs[P], Cases[C].Spec, Scale, Config);
  });

  PolicyTally Tally[NumCases];
  uint64_t CorruptTotal = 0, WedgedTotal = 0;

  for (uint64_t I = 0; I != Campaigns; ++I) {
    size_t P = static_cast<size_t>(I % NumProgs);
    size_t C = static_cast<size_t>((I / NumProgs) % NumCases);
    const dbt::RunResult &R = Runs[I];

    PolicyTally &T = Tally[C];
    ++T.Campaigns;
    T.Injected += R.Counters.get("chaos.injected");
    T.WatchdogTrips += R.Counters.get("harden.watchdog_trips");
    T.InterpPins += R.Counters.get("harden.interp_only_blocks");
    ++T.ByError[static_cast<size_t>(R.Error)];
    if (R.completed()) {
      if (R.Checksum == Base[P].Checksum &&
          R.MemoryHash == Base[P].MemoryHash) {
        ++T.Survived;
      } else {
        ++T.Corrupt;
        ++CorruptTotal;
        std::fprintf(stderr,
                     "CORRUPT: campaign %" PRIu64 " (%s, %s, seed-derived "
                     "plan) completed with diverged state\n",
                     I, Progs[P]->Name, Cases[C].Label);
      }
    } else if (R.Error == dbt::RunError::MonitorStepLimit) {
      ++T.Wedged;
      ++WedgedTotal;
      std::fprintf(stderr,
                   "WEDGE: campaign %" PRIu64 " (%s, %s) hit the monitor "
                   "step guard — livelock not contained\n",
                   I, Progs[P]->Name, Cases[C].Label);
    } else {
      ++T.Degraded;
    }
  }

  TablePrinter T({"Policy", "Campaigns", "Survived", "Degraded", "Wedged",
                  "Corrupt", "Injected", "WatchdogTrips", "InterpPins"});
  uint64_t SurvivedTotal = 0, DegradedTotal = 0;
  for (size_t C = 0; C != NumCases; ++C) {
    const PolicyTally &Y = Tally[C];
    SurvivedTotal += Y.Survived;
    DegradedTotal += Y.Degraded;
    T.addRow({Cases[C].Label, withCommas(Y.Campaigns),
              withCommas(Y.Survived), withCommas(Y.Degraded),
              withCommas(Y.Wedged), withCommas(Y.Corrupt),
              withCommas(Y.Injected), withCommas(Y.WatchdogTrips),
              withCommas(Y.InterpPins)});
  }
  printTable(T, "chaos_soak");

  TablePrinter E({"RunError", "Count"});
  for (size_t K = 0; K != dbt::NumRunErrors; ++K) {
    uint64_t N = 0;
    for (size_t C = 0; C != NumCases; ++C)
      N += Tally[C].ByError[K];
    E.addRow({dbt::runErrorName(static_cast<dbt::RunError>(K)),
              withCommas(N)});
  }
  printTable(E, "chaos_soak_errors");

  std::printf("Soak: %" PRIu64 " campaigns, %" PRIu64 " survived, %" PRIu64
              " degraded (typed), %" PRIu64 " wedged, %" PRIu64 " corrupt\n",
              Campaigns, SurvivedTotal, DegradedTotal, WedgedTotal,
              CorruptTotal);
  if (WedgedTotal != 0 || CorruptTotal != 0) {
    std::fprintf(stderr, "chaos soak FAILED\n");
    return 1;
  }
  if (SurvivedTotal == 0) {
    std::fprintf(stderr,
                 "chaos soak FAILED: no campaign survived — injection or "
                 "degradation machinery is misconfigured\n");
    return 1;
  }
  std::printf("chaos soak passed\n");
  return 0;
}
