//===- bench/chaos_soak.cpp - Seeded fault-injection soak -----------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness soak for the DBT engine: runs hundreds of seeded
/// fault-injection campaigns (chaos::FaultPlan::randomized) across all
/// five MDA policies and several engine configurations, and checks the
/// graceful-degradation contract on every run:
///
///   - a run that reports success must reproduce the fault-free
///     baseline's Checksum and MemoryHash bit-exactly;
///   - a run that does not succeed must report a *typed* RunError other
///     than MonitorStepLimit — hitting the step guard under injection
///     means the degradation ladder failed to contain a livelock
///     (an engine wedge), which fails the soak.
///
/// Three campaign phases run back to back:
///
///   1. the classic phase over two SPEC programs (flush, supersede and
///      dispatch surfaces under injection);
///   2. the SMC-storm phase over the hostile-guest suite
///      (src/workloads/Hostile.h): self-modifying and churn adversaries
///      with the write barrier, re-analysis and the budget ceilings
///      live, still under fault injection, checked against the pure
///      interpreter oracle;
///   3. the shared-cache phase (docs/SERVING.md): batches of tenants on
///      one TranslationService, half of them chaos campaigns tearing
///      patches and storming flushes while the other half run clean
///      with the verifier on and hold live leases.  Any clean tenant
///      that diverges from its oracle, wedges, or aborts is
///      cross-tenant bleed and fails the soak loudly; every batch must
///      also drain its cache to zero live leases.
///
/// Phases 1 and 2 additionally rotate guest-idiom fusion on (coprime
/// modulus, so fused campaigns cross-product with every cache/dispatch/
/// hardening configuration): fused cores carry the byte-exact re-check
/// of verifier invariant 9, so a torn patch inside one must surface as
/// a typed abort, never as silent corruption — and fused runs are still
/// diffed against the same fusion-oblivious baselines.
///
/// Every failure line prints the campaign's derived fault-plan seed and
/// the exact replay invocation (`--seed S --campaign I`,
/// `--seed S --smc-campaign I` or `--seed S --shared-campaign I`), so
/// any wedge or corruption seen in a CI log is reproducible from the
/// log alone.
///
/// Registered as a ctest target; MDABT_CHAOS_CAMPAIGNS overrides the
/// per-phase campaign count (default 250).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "chaos/FaultPlan.h"
#include "dbt/TranslationService.h"
#include "guest/Interpreter.h"
#include "mda/PolicyFactory.h"
#include "workloads/Hostile.h"

#include <cinttypes>
#include <string>
#include <vector>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

struct PolicyCase {
  const char *Label;
  mda::PolicySpec Spec;
};

/// One row of the survival report.
struct PolicyTally {
  uint64_t Campaigns = 0;
  uint64_t Survived = 0;  ///< completed, checksum+memhash match baseline
  uint64_t Degraded = 0;  ///< typed abort (TrapStorm/PatchFailed/...)
  uint64_t Wedged = 0;    ///< MonitorStepLimit under injection
  uint64_t Corrupt = 0;   ///< completed but diverged from baseline
  uint64_t Injected = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t InterpPins = 0;
  uint64_t ByError[dbt::NumRunErrors] = {};
};

/// Ground truth one campaign is diffed against.
struct Baseline {
  uint64_t Checksum = 0;
  uint64_t MemoryHash = 0;
};

/// Interpreter oracle for a hostile image: the interpreter decodes
/// fresh bytes every instruction, so it is the SMC ground truth.
Baseline interpretBaseline(const guest::GuestImage &Image) {
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::Interpreter Interp(Mem);
  Interp.run(Cpu, 500'000'000ULL);
  if (!Cpu.Halted) {
    std::fprintf(stderr, "error: oracle run of %s did not halt\n",
                 Image.Name.c_str());
    std::exit(1);
  }
  return {Cpu.Checksum, dbt::fnv1a(Mem.data(), Mem.size())};
}

/// Outcome classes shared by both phases' tallies.
enum class Outcome { Survived, Degraded, Wedged, Corrupt };

Outcome classify(const dbt::RunResult &R, const Baseline &Base) {
  if (R.completed())
    return (R.Checksum == Base.Checksum && R.MemoryHash == Base.MemoryHash)
               ? Outcome::Survived
               : Outcome::Corrupt;
  return R.Error == dbt::RunError::MonitorStepLimit ? Outcome::Wedged
                                                    : Outcome::Degraded;
}

void tallyOutcome(PolicyTally &T, const dbt::RunResult &R, Outcome O) {
  ++T.Campaigns;
  T.Injected += R.Counters.get("chaos.injected");
  T.WatchdogTrips += R.Counters.get("harden.watchdog_trips");
  T.InterpPins += R.Counters.get("harden.interp_only_blocks");
  ++T.ByError[static_cast<size_t>(R.Error)];
  switch (O) {
  case Outcome::Survived:
    ++T.Survived;
    break;
  case Outcome::Degraded:
    ++T.Degraded;
    break;
  case Outcome::Wedged:
    ++T.Wedged;
    break;
  case Outcome::Corrupt:
    ++T.Corrupt;
    break;
  }
}

void printSurvival(const char *Name, const PolicyCase *Cases,
                   size_t NumCases, const PolicyTally *Tally) {
  TablePrinter T({"Policy", "Campaigns", "Survived", "Degraded", "Wedged",
                  "Corrupt", "Injected", "WatchdogTrips", "InterpPins"});
  for (size_t C = 0; C != NumCases; ++C) {
    const PolicyTally &Y = Tally[C];
    T.addRow({Cases[C].Label, withCommas(Y.Campaigns),
              withCommas(Y.Survived), withCommas(Y.Degraded),
              withCommas(Y.Wedged), withCommas(Y.Corrupt),
              withCommas(Y.Injected), withCommas(Y.WatchdogTrips),
              withCommas(Y.InterpPins)});
  }
  printTable(T, Name);
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);

  // Replay flags (left in argv by parseArgs): run exactly one campaign
  // of the chosen phase.  A failing CI log line prints the invocation
  // verbatim, so replay needs nothing but the log.
  long long ReplayMain = -1, ReplaySmc = -1, ReplayShared = -1;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      size_t Len = std::strlen(Flag);
      if (std::strncmp(Arg, Flag, Len) != 0)
        return nullptr;
      if (Arg[Len] == '=')
        return Arg + Len + 1;
      if (Arg[Len] == '\0' && I + 1 < argc)
        return argv[++I];
      return nullptr;
    };
    if (const char *V = Value("--campaign")) {
      ReplayMain = std::atoll(V);
    } else if (const char *V = Value("--smc-campaign")) {
      ReplaySmc = std::atoll(V);
    } else if (const char *V = Value("--shared-campaign")) {
      ReplayShared = std::atoll(V);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--seed S] [--campaign I] "
                   "[--smc-campaign I] [--shared-campaign I]\n"
                   "error: unknown argument %s\n",
                   argv[0], Arg);
      return 2;
    }
  }
  const bool Replay =
      ReplayMain >= 0 || ReplaySmc >= 0 || ReplayShared >= 0;

  if (!Replay)
    banner("Chaos soak: seeded fault-injection campaigns against every MDA "
           "policy",
           "every campaign either survives bit-exactly or aborts with a "
           "typed RunError; zero wedges, zero silent corruption");

  uint64_t Campaigns = 250;
  if (const char *Env = std::getenv("MDABT_CHAOS_CAMPAIGNS")) {
    long long V = std::atoll(Env);
    if (V > 0)
      Campaigns = static_cast<uint64_t>(V);
  }

  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 30000;

  const PolicyCase Cases[] = {
      {"direct", {mda::MechanismKind::Direct, 0, false, 0, false}},
      {"static", {mda::MechanismKind::StaticProfiling, 0, false, 0, false}},
      {"dyn@50", {mda::MechanismKind::DynamicProfiling, 50, false, 0, false}},
      {"eh+rearrange",
       {mda::MechanismKind::ExceptionHandling, 50, true, 0, false}},
      {"dpeh+retrans4", {mda::MechanismKind::Dpeh, 50, false, 4, false}},
  };
  constexpr size_t NumCases = sizeof(Cases) / sizeof(Cases[0]);

  const workloads::BenchmarkInfo *Progs[] = {
      workloads::findBenchmark("470.lbm"),
      workloads::findBenchmark("410.bwaves"),
  };
  constexpr size_t NumProgs = sizeof(Progs) / sizeof(Progs[0]);
  for (const workloads::BenchmarkInfo *P : Progs) {
    if (!P) {
      std::fprintf(stderr, "error: soak benchmark missing from catalog\n");
      return 1;
    }
  }

  const std::vector<workloads::HostileProgram> Hostile =
      workloads::hostileCatalog();
  const size_t NumHostile = Hostile.size();

  // Per-campaign fault-plan seeds.  Both formulas are part of the
  // replay contract: a printed (base seed, campaign index) pair fully
  // determines the plan.
  auto mainPlanSeed = [&](uint64_t I) -> uint64_t {
    return Opt.Seed * 1000003 + I;
  };
  auto smcPlanSeed = [&](uint64_t I) -> uint64_t {
    return Opt.Seed * 1000003 + 1000000007 + I;
  };
  auto sharedPlanSeed = [&](uint64_t I) -> uint64_t {
    return Opt.Seed * 1000003 + 2000000011 + I;
  };

  // --- campaign runners (shared by the soak and by replay mode) ------

  auto runMainCampaign = [&](uint64_t I) -> dbt::RunResult {
    size_t P = static_cast<size_t>(I % NumProgs);
    size_t C = static_cast<size_t>((I / NumProgs) % NumCases);
    chaos::FaultPlan Plan = chaos::FaultPlan::randomized(mainPlanSeed(I));

    dbt::EngineConfig Config;
    // A wedge (uncontained livelock) must surface quickly as
    // MonitorStepLimit instead of hanging the soak.
    Config.MaxMonitorSteps = 500'000;
    Config.Chaos = &Plan;
    // The code-cache verifier runs on every campaign: injected faults
    // that leave the cache structurally malformed must be caught as a
    // typed VerifyFailed abort, never as silent corruption.
    Config.Verify = true;
    // Rotate through the cache configurations that stress the flush and
    // supersede paths.
    switch (I % 4) {
    case 1:
      Config.CodeCacheLimitWords = 256;
      break;
    case 2:
      Config.CodeCacheLimitWords = 2000;
      break;
    case 3:
      Config.FlushOnSupersede = true;
      break;
    default:
      break;
    }
    // Rotate the hot-dispatch mechanisms in as well (coprime with the
    // cache rotation above, so the combinations cross-product): inline
    // caches and trace formation add patch surface the injector can
    // tear, and the dispatch table must stay coherent through chaos
    // flushes.  Architectural identity across dispatch configs means
    // the fault-free baselines stay valid ground truth.
    switch (I % 3) {
    case 1:
      Config.HashDispatch = true;
      Config.InlineCaches = true;
      break;
    case 2:
      Config.HashDispatch = true;
      Config.InlineCaches = true;
      Config.Superblocks = true;
      break;
    default:
      break;
    }
    // Rotate guest-idiom fusion in (modulus 11, coprime with every
    // rotation above, so fused campaigns cross-product with all cache,
    // dispatch and hardening configs): fused cores add the byte-exact
    // re-check surface of verifier invariant 9, and torn patches inside
    // a fused sequence must abort typed, never corrupt silently.
    if (I % 11 < 5)
      Config.Fusion = true;
    // Rotate hybrid static AOT pre-translation in (modulus 13, coprime
    // with every rotation above): AOT-published entries must obey the
    // same dirty-epoch retirement as dynamic ones while the injector
    // tears patches, and the AOT reachability invariant (verifier
    // check 10) must hold through chaos flush storms.
    if (I % 13 < 4)
      Config.Aot = dbt::AotMode::Hybrid;
    // Every fifth campaign runs with tight tolerance ceilings so the
    // typed-abort paths (PatchFailed/TranslationFailed/CacheThrash) are
    // exercised, not just the unlimited-degradation paths.
    if (I % 5 == 4) {
      Config.Hardening.PatchFailureLimit = 8;
      Config.Hardening.TranslationFailureLimit = 64;
      Config.Hardening.FlushLimit = 32;
      Config.Hardening.MaxWatchdogTrips = 64;
    }

    return reporting::runPolicy(*Progs[P], Cases[C].Spec, Scale, Config);
  };

  // Shared by phase 2 (isolated, PlanSeed = smcPlanSeed) and the chaos
  // slots of phase 3 (serving-attached, PlanSeed = sharedPlanSeed).
  auto runSmcCampaign = [&](uint64_t I, uint64_t PlanSeed,
                            dbt::TranslationService *Service)
      -> dbt::RunResult {
    size_t P = static_cast<size_t>(I % NumHostile);
    size_t C = static_cast<size_t>((I / NumHostile) % NumCases);
    chaos::FaultPlan Plan = chaos::FaultPlan::randomized(PlanSeed);

    dbt::EngineConfig Config;
    Config.MaxMonitorSteps = 500'000;
    Config.Chaos = &Plan;
    Config.Verify = true;
    Config.Service = Service;
    // The alignment analysis is on for every SMC campaign: verdict
    // revocation and lazy re-analysis must stay sound while the
    // injector tears patches out from under the invalidation path.
    Config.Analysis = true;
    switch (I % 4) {
    case 1:
      Config.CodeCacheLimitWords = 256;
      break;
    case 2:
      Config.CodeCacheLimitWords = 2000;
      break;
    case 3:
      Config.FlushOnSupersede = true;
      break;
    default:
      break;
    }
    // Keyed off I / NumHostile, not I: the hostile catalog holds three
    // programs, so an `I % 3` here would alias program and dispatch
    // config (smc.churn would only ever meet superblocks) instead of
    // cross-producting them.
    switch ((I / NumHostile) % 3) {
    case 1:
      Config.HashDispatch = true;
      Config.InlineCaches = true;
      break;
    case 2:
      Config.HashDispatch = true;
      Config.InlineCaches = true;
      Config.Superblocks = true;
      break;
    default:
      break;
    }
    if (I % 5 == 4) {
      Config.Hardening.PatchFailureLimit = 8;
      Config.Hardening.TranslationFailureLimit = 64;
      Config.Hardening.FlushLimit = 32;
      Config.Hardening.MaxWatchdogTrips = 64;
    }
    // Fusion under SMC chaos (same coprime-rotation rationale as the
    // main phase): a fused store's episode-stop resume point and the
    // fused-core byte re-check must both hold while the injector tears
    // invalidation patches.
    if (I % 11 < 5)
      Config.Fusion = true;
    // Hybrid AOT under SMC chaos (same coprime rationale, modulus 13):
    // statically pre-translated units sit right in the blast radius of
    // self-modifying stores — staleness must drop them and the lazy
    // install path must never resurrect a stale payload.
    if (I % 13 < 4)
      Config.Aot = dbt::AotMode::Hybrid;
    // Rotate the resource-governance surfaces in too: ceilings convert
    // the churn adversary into typed budget aborts, the pin converts it
    // into interp-only degradation — both must stay typed under chaos.
    if (I % 7 == 6) {
      Config.Budget.MaxChurn = 96;
      Config.Budget.MaxCodeBytes = 24576;
    } else if (I % 7 == 3) {
      Config.Budget.SmcChurnPinLimit = 3;
    }

    std::unique_ptr<dbt::MdaPolicy> Policy =
        mda::makePolicy(Cases[C].Spec, &Hostile[P].Image);
    dbt::Engine Engine(Hostile[P].Image, *Policy, Config);
    return Engine.run();
  };

  // A clean tenant sharing a cache with chaos campaigns: no injection,
  // verifier on, full dispatch surface.  Anything but a bit-exact
  // survival here is cross-tenant bleed.
  auto runCleanTenant = [&](uint64_t I, dbt::TranslationService *Service)
      -> dbt::RunResult {
    size_t P = static_cast<size_t>(I % NumHostile);
    size_t C = static_cast<size_t>((I / NumHostile) % NumCases);
    dbt::EngineConfig Config;
    Config.MaxMonitorSteps = 500'000;
    Config.Verify = true;
    Config.Analysis = true;
    Config.HashDispatch = true;
    Config.InlineCaches = true;
    Config.Superblocks = true;
    Config.Service = Service;
    std::unique_ptr<dbt::MdaPolicy> Policy =
        mda::makePolicy(Cases[C].Spec, &Hostile[P].Image);
    dbt::Engine Engine(Hostile[P].Image, *Policy, Config);
    return Engine.run();
  };

  // --- ground truth --------------------------------------------------

  // Hostile baselines come straight from the interpreter oracle.
  std::vector<Baseline> HostileBase;
  for (const workloads::HostileProgram &P : Hostile)
    HostileBase.push_back(interpretBaseline(P.Image));

  // Fault-free SPEC baselines: every policy must agree on the
  // observable final state of each program — that shared state is the
  // ground truth the chaos runs are checked against.  The baseline runs
  // are themselves independent; fan them out too.
  std::vector<dbt::RunResult> BaseRuns(NumProgs * NumCases);
  parallelFor(Opt.Jobs, BaseRuns.size(), [&](size_t I) {
    size_t P = I / NumCases;
    size_t C = I % NumCases;
    // Fault-free baselines run with the verifier too: a verifier that
    // flags clean runs would poison the whole soak.
    dbt::EngineConfig BaseConfig;
    BaseConfig.Verify = true;
    BaseRuns[I] =
        reporting::runPolicy(*Progs[P], Cases[C].Spec, Scale, BaseConfig);
  });
  Baseline Base[NumProgs];
  for (size_t P = 0; P != NumProgs; ++P) {
    for (size_t C = 0; C != NumCases; ++C) {
      const dbt::RunResult &R = BaseRuns[P * NumCases + C];
      reporting::checkRunCompleted(
          R, std::string(Progs[P]->Name) + " fault-free baseline (" +
                 Cases[C].Label + ")");
      if (C == 0) {
        Base[P].Checksum = R.Checksum;
        Base[P].MemoryHash = R.MemoryHash;
      } else if (R.Checksum != Base[P].Checksum ||
                 R.MemoryHash != Base[P].MemoryHash) {
        std::fprintf(stderr,
                     "error: fault-free baselines disagree on %s (%s)\n",
                     Progs[P]->Name, Cases[C].Label);
        return 1;
      }
    }
  }

  // --- replay mode: one campaign, verdict on stdout ------------------

  if (Replay) {
    const bool Smc = ReplaySmc >= 0;
    const bool Shared = ReplayShared >= 0;
    uint64_t I = static_cast<uint64_t>(Shared ? ReplayShared
                                       : Smc  ? ReplaySmc
                                              : ReplayMain);
    // A shared-campaign replay reruns the chaos tenant against a fresh
    // service of its own: its verdict must not depend on cache state
    // other tenants left behind — that independence is the phase's
    // whole claim.
    dbt::TranslationService ReplayService;
    dbt::RunResult R =
        Shared ? runSmcCampaign(I, sharedPlanSeed(I), &ReplayService)
        : Smc  ? runSmcCampaign(I, smcPlanSeed(I), nullptr)
               : runMainCampaign(I);
    const bool Hostile_ = Smc || Shared;
    const Baseline &B =
        Hostile_ ? HostileBase[I % NumHostile] : Base[I % NumProgs];
    const char *Prog = Hostile_ ? Hostile[I % NumHostile].Name.c_str()
                                : Progs[I % NumProgs]->Name;
    const char *Policy =
        Cases[(I / (Hostile_ ? NumHostile : NumProgs)) % NumCases].Label;
    uint64_t PlanSeed = Shared ? sharedPlanSeed(I)
                        : Smc  ? smcPlanSeed(I)
                               : mainPlanSeed(I);
    Outcome O = classify(R, B);
    const char *Verdict = O == Outcome::Survived   ? "SURVIVED"
                          : O == Outcome::Degraded ? "DEGRADED"
                          : O == Outcome::Wedged   ? "WEDGE"
                                                   : "CORRUPT";
    std::printf("replay %s campaign %" PRIu64 " (%s, %s, plan seed "
                "0x%" PRIx64 "): %s (error=%s, injected=%" PRIu64 ")\n",
                Shared ? "shared" : Smc ? "smc" : "main", I, Prog, Policy,
                PlanSeed, Verdict,
                dbt::runErrorName(R.Error),
                R.Counters.get("chaos.injected"));
    return (O == Outcome::Wedged || O == Outcome::Corrupt) ? 1 : 0;
  }

  // --- phase 1: classic campaigns over the SPEC programs -------------

  // Every campaign's fault plan is derived from (base seed, index), so
  // the campaigns are shared-nothing and can run in any order; the tally
  // below walks the index-addressed results serially, keeping the report
  // and every stderr diagnostic in campaign order regardless of --jobs.
  std::vector<dbt::RunResult> Runs(Campaigns);
  parallelFor(Opt.Jobs, Campaigns,
              [&](size_t I) { Runs[I] = runMainCampaign(I); });

  PolicyTally Tally[NumCases];
  uint64_t CorruptTotal = 0, WedgedTotal = 0;

  for (uint64_t I = 0; I != Campaigns; ++I) {
    size_t P = static_cast<size_t>(I % NumProgs);
    size_t C = static_cast<size_t>((I / NumProgs) % NumCases);
    const dbt::RunResult &R = Runs[I];
    Outcome O = classify(R, Base[P]);
    tallyOutcome(Tally[C], R, O);
    if (O == Outcome::Corrupt) {
      ++CorruptTotal;
      std::fprintf(stderr,
                   "CORRUPT: campaign %" PRIu64 " (%s, %s, plan seed "
                   "0x%" PRIx64 ") completed with diverged state — replay: "
                   "chaos_soak --seed 0x%" PRIx64 " --campaign %" PRIu64
                   "\n",
                   I, Progs[P]->Name, Cases[C].Label, mainPlanSeed(I),
                   Opt.Seed, I);
    } else if (O == Outcome::Wedged) {
      ++WedgedTotal;
      std::fprintf(stderr,
                   "WEDGE: campaign %" PRIu64 " (%s, %s, plan seed "
                   "0x%" PRIx64 ") hit the monitor step guard — livelock "
                   "not contained — replay: chaos_soak --seed 0x%" PRIx64
                   " --campaign %" PRIu64 "\n",
                   I, Progs[P]->Name, Cases[C].Label, mainPlanSeed(I),
                   Opt.Seed, I);
    }
  }

  // --- phase 2: SMC-storm campaigns over the hostile suite -----------

  std::vector<dbt::RunResult> SmcRuns(Campaigns);
  parallelFor(Opt.Jobs, Campaigns, [&](size_t I) {
    SmcRuns[I] = runSmcCampaign(I, smcPlanSeed(I), nullptr);
  });

  PolicyTally SmcTally[NumCases];
  for (uint64_t I = 0; I != Campaigns; ++I) {
    size_t P = static_cast<size_t>(I % NumHostile);
    size_t C = static_cast<size_t>((I / NumHostile) % NumCases);
    const dbt::RunResult &R = SmcRuns[I];
    Outcome O = classify(R, HostileBase[P]);
    tallyOutcome(SmcTally[C], R, O);
    if (O == Outcome::Corrupt) {
      ++CorruptTotal;
      std::fprintf(stderr,
                   "CORRUPT: smc campaign %" PRIu64 " (%s, %s, plan seed "
                   "0x%" PRIx64 ") completed with diverged state — replay: "
                   "chaos_soak --seed 0x%" PRIx64 " --smc-campaign %" PRIu64
                   "\n",
                   I, Hostile[P].Name.c_str(), Cases[C].Label,
                   smcPlanSeed(I), Opt.Seed, I);
    } else if (O == Outcome::Wedged) {
      ++WedgedTotal;
      std::fprintf(stderr,
                   "WEDGE: smc campaign %" PRIu64 " (%s, %s, plan seed "
                   "0x%" PRIx64 ") hit the monitor step guard — livelock "
                   "not contained — replay: chaos_soak --seed 0x%" PRIx64
                   " --smc-campaign %" PRIu64 "\n",
                   I, Hostile[P].Name.c_str(), Cases[C].Label,
                   smcPlanSeed(I), Opt.Seed, I);
    }
  }

  // --- phase 3: shared-cache campaigns (chaos + clean tenants) -------

  // Batches of BatchSize campaigns share one TranslationService: even
  // slots are chaos SMC campaigns (torn patches, flush storms, spurious
  // traps — publishing into and hitting the shared cache), odd slots
  // are clean tenants holding live leases on the same cache.  The
  // isolation contract under test: no amount of chaos in one tenant may
  // perturb another tenant's architectural results, and every batch
  // drains its cache to zero live leases.
  constexpr uint64_t BatchSize = 6;
  const uint64_t NumBatches = (Campaigns + BatchSize - 1) / BatchSize;
  std::vector<dbt::TranslationService> Services(NumBatches);
  std::vector<dbt::RunResult> SharedRuns(Campaigns);
  parallelFor(Opt.Jobs, Campaigns, [&](size_t I) {
    dbt::TranslationService *S = &Services[I / BatchSize];
    SharedRuns[I] = (I % 2 == 0)
                        ? runSmcCampaign(I, sharedPlanSeed(I), S)
                        : runCleanTenant(I, S);
  });

  PolicyTally SharedTally[NumCases];
  uint64_t BleedTotal = 0;
  for (uint64_t I = 0; I != Campaigns; ++I) {
    size_t P = static_cast<size_t>(I % NumHostile);
    size_t C = static_cast<size_t>((I / NumHostile) % NumCases);
    const dbt::RunResult &R = SharedRuns[I];
    Outcome O = classify(R, HostileBase[P]);
    if (I % 2 == 0) {
      // Chaos slot: the usual soak contract (typed degradation or
      // bit-exact survival).
      tallyOutcome(SharedTally[C], R, O);
      if (O == Outcome::Corrupt || O == Outcome::Wedged) {
        O == Outcome::Corrupt ? ++CorruptTotal : ++WedgedTotal;
        std::fprintf(stderr,
                     "%s: shared campaign %" PRIu64 " (%s, %s, plan seed "
                     "0x%" PRIx64 ") — replay: chaos_soak --seed "
                     "0x%" PRIx64 " --shared-campaign %" PRIu64 "\n",
                     O == Outcome::Corrupt ? "CORRUPT" : "WEDGE", I,
                     Hostile[P].Name.c_str(), Cases[C].Label,
                     sharedPlanSeed(I), Opt.Seed, I);
      }
    } else if (O != Outcome::Survived) {
      // Clean slot: nothing was injected into THIS tenant, so any
      // deviation means a cache-mate's chaos leaked across the tenant
      // boundary.
      ++BleedTotal;
      std::fprintf(stderr,
                   "BLEED: clean tenant %" PRIu64 " (%s, %s) sharing a "
                   "cache with chaos campaigns %s (error=%s) — "
                   "cross-tenant isolation violated\n",
                   I, Hostile[P].Name.c_str(), Cases[C].Label,
                   O == Outcome::Corrupt ? "diverged from its oracle"
                   : O == Outcome::Wedged ? "wedged"
                                          : "aborted",
                   dbt::runErrorName(R.Error));
    }
  }
  uint64_t LeakedLeases = 0;
  for (const dbt::TranslationService &S : Services)
    LeakedLeases += S.cache().liveLeases();
  if (LeakedLeases != 0)
    std::fprintf(stderr,
                 "LEAK: %" PRIu64 " live leases remain after every "
                 "shared-cache tenant finished\n",
                 LeakedLeases);

  // --- report --------------------------------------------------------

  printSurvival("chaos_soak", Cases, NumCases, Tally);
  printSurvival("chaos_soak_smc", Cases, NumCases, SmcTally);
  printSurvival("chaos_soak_shared", Cases, NumCases, SharedTally);

  TablePrinter E({"RunError", "Count"});
  for (size_t K = 0; K != dbt::NumRunErrors; ++K) {
    uint64_t N = 0;
    for (size_t C = 0; C != NumCases; ++C)
      N += Tally[C].ByError[K] + SmcTally[C].ByError[K] +
           SharedTally[C].ByError[K];
    E.addRow({dbt::runErrorName(static_cast<dbt::RunError>(K)),
              withCommas(N)});
  }
  printTable(E, "chaos_soak_errors");

  uint64_t SurvivedTotal = 0, DegradedTotal = 0, SmcSurvived = 0,
           SharedSurvived = 0;
  for (size_t C = 0; C != NumCases; ++C) {
    SurvivedTotal += Tally[C].Survived + SmcTally[C].Survived +
                     SharedTally[C].Survived;
    DegradedTotal += Tally[C].Degraded + SmcTally[C].Degraded +
                     SharedTally[C].Degraded;
    SmcSurvived += SmcTally[C].Survived;
    SharedSurvived += SharedTally[C].Survived;
  }
  std::printf("Soak: %" PRIu64 " campaigns (%" PRIu64 " classic + %" PRIu64
              " smc-storm + %" PRIu64 " shared-cache), %" PRIu64
              " survived, %" PRIu64 " degraded (typed), %" PRIu64
              " wedged, %" PRIu64 " corrupt, %" PRIu64
              " cross-tenant bleeds, %" PRIu64 " leaked leases\n",
              Campaigns * 3, Campaigns, Campaigns, Campaigns,
              SurvivedTotal, DegradedTotal, WedgedTotal, CorruptTotal,
              BleedTotal, LeakedLeases);
  if (WedgedTotal != 0 || CorruptTotal != 0 || BleedTotal != 0 ||
      LeakedLeases != 0) {
    std::fprintf(stderr, "chaos soak FAILED\n");
    return 1;
  }
  if (SurvivedTotal == 0 || SmcSurvived == 0 || SharedSurvived == 0) {
    std::fprintf(stderr,
                 "chaos soak FAILED: no campaign survived — injection or "
                 "degradation machinery is misconfigured\n");
    return 1;
  }
  std::printf("chaos soak passed\n");
  return 0;
}
