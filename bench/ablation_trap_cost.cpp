//===- bench/ablation_trap_cost.cpp - Trap-cost sensitivity ---------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: how sensitive is the paper's Fig. 16 ranking to the
/// misalignment trap cost?  The paper takes ~1000 cycles from the FX!32
/// studies; this sweep re-runs the overall comparison at 250..4000
/// cycles on a representative benchmark subset.  The ranking
/// (DPEH <= EH < profiling methods < Direct) should hold throughout;
/// only the *margins* move.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): Fig. 16 geomeans vs trap cost",
         "rankings stable across trap costs; profiling-method penalties "
         "scale with the cost, the Direct method's do not");

  workloads::ScaleConfig Scale = stdScale(Opt);
  const char *Subset[] = {"164.gzip",      "252.eon",   "179.art",
                          "483.xalancbmk", "410.bwaves", "433.milc",
                          "450.soplex",    "453.povray"};
  const uint32_t TrapCosts[] = {250, 500, 1000, 2000, 4000};

  using mda::MechanismKind;
  struct Column {
    const char *Name;
    mda::PolicySpec Spec;
  };
  const Column Columns[] = {
      {"EH", {MechanismKind::ExceptionHandling, 50, false, 0, false}},
      {"DPEH", {MechanismKind::Dpeh, 50, false, 0, false}},
      {"DynProf", {MechanismKind::DynamicProfiling, 50, false, 0, false}},
      {"Static", {MechanismKind::StaticProfiling, 0, false, 0, false}},
      {"Direct", {MechanismKind::Direct, 0, false, 0, false}},
  };

  // One flat matrix over (trap cost x benchmark x policy); the per-cell
  // EngineConfig carries the swept trap cost.
  std::vector<reporting::MatrixCell> Cells;
  for (uint32_t Trap : TrapCosts) {
    dbt::EngineConfig Config;
    Config.Cost.TrapCycles = Trap;
    for (const char *Name : Subset) {
      const workloads::BenchmarkInfo *Info =
          workloads::findBenchmark(Name);
      for (int C = 0; C != 5; ++C)
        Cells.push_back(
            {.Info = Info, .Spec = Columns[C].Spec, .Config = Config});
    }
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"TrapCycles", "EH", "DPEH", "DynProf", "Static",
                  "Direct"});
  const size_t NumSubset = std::size(Subset);
  for (size_t TI = 0; TI != std::size(TrapCosts); ++TI) {
    std::vector<double> Norm[5];
    for (size_t B = 0; B != NumSubset; ++B) {
      const dbt::RunResult *Row0 = &Results[(TI * NumSubset + B) * 5];
      for (int C = 0; C != 5; ++C)
        Norm[C].push_back(static_cast<double>(Row0[C].Cycles) /
                          static_cast<double>(Row0[0].Cycles));
    }
    std::vector<std::string> Row = {std::to_string(TrapCosts[TI])};
    for (auto &Series : Norm)
      Row.push_back(format("%.2f", geometricMean(Series)));
    T.addRow(Row);
  }
  printTable(T, "ablation_trap_cost");
  return 0;
}
