//===- bench/ablation_adaptive.cpp - The "truly adaptive" method ----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for paper section IV-D's unevaluated idea: instrumented,
/// revertible exception stubs (Fig. 8, right) that patch the original
/// memory instruction back once the access pattern returns to aligned.
/// The paper argues from instruction counts that "this seemingly more
/// adaptive method may not be worth pursuing"; this bench tests the
/// claim empirically against multi-version code on the benchmarks with
/// mixed alignment behaviour, plus the paper's 21-benchmark set.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mda/Policies.h"

using namespace mdabt;
using namespace mdabt::bench;

namespace {

dbt::RunResult runDpehVariant(const workloads::BenchmarkInfo &Info,
                              const mda::DpehOptions &Opts,
                              const workloads::ScaleConfig &Scale) {
  guest::GuestImage Image =
      workloads::buildBenchmark(Info, workloads::InputKind::Ref, Scale);
  mda::DpehPolicy Policy(50, Opts);
  dbt::Engine Engine(Image, Policy);
  return Engine.run();
}

reporting::MatrixCell dpehCell(const workloads::BenchmarkInfo *Info,
                               const mda::DpehOptions &Opts,
                               const char *Variant,
                               const workloads::ScaleConfig &Scale) {
  return {.Info = Info,
          .Label = std::string(Info->Name) + " (" + Variant + ")",
          .Run = [Info, Opts, Scale] {
            return runDpehVariant(*Info, Opts, Scale);
          }};
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): Fig. 8's truly-adaptive revertible "
         "stubs vs multi-version code (baseline: DPEH)",
         "the paper predicts the adaptive method's ~10 bookkeeping "
         "instructions make it no better than multi-version code");

  workloads::ScaleConfig Scale = stdScale(Opt);
  mda::DpehOptions MvOpts;
  MvOpts.MultiVersion = true;
  mda::DpehOptions AdOpts;
  AdOpts.AdaptiveRevert = true;
  AdOpts.RevertThreshold = 64;

  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks) {
    Cells.push_back(dpehCell(Info, mda::DpehOptions(), "DPEH", Scale));
    Cells.push_back(dpehCell(Info, MvOpts, "multi-version", Scale));
    Cells.push_back(dpehCell(Info, AdOpts, "adaptive", Scale));
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "DPEH", "+multi-version", "+adaptive",
                  "MV gain", "Adaptive gain", "reverts"});
  std::vector<double> MvGains, AdGains;
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    const dbt::RunResult &Base = Results[B * 3];
    const dbt::RunResult &Mv = Results[B * 3 + 1];
    const dbt::RunResult &Ad = Results[B * 3 + 2];

    double MvGain = reporting::gainOver(Base.Cycles, Mv.Cycles);
    double AdGain = reporting::gainOver(Base.Cycles, Ad.Cycles);
    MvGains.push_back(MvGain);
    AdGains.push_back(AdGain);
    T.addRow({Benchmarks[B]->Name, withCommas(Base.Cycles),
              withCommas(Mv.Cycles), withCommas(Ad.Cycles),
              signedPercent(MvGain), signedPercent(AdGain),
              withCommas(Ad.Counters.get("dbt.reverts"))});
  }
  T.addRow({"Average", "", "", "",
            signedPercent(arithmeticMean(MvGains)),
            signedPercent(arithmeticMean(AdGains)), ""});
  printTable(T, "ablation_adaptive");
  std::printf("Verdict: multi-version mean gain %s vs adaptive %s — the "
              "paper's instruction-count argument holds when adaptive "
              "gains do not exceed MV gains.\n",
              signedPercent(arithmeticMean(MvGains)).c_str(),
              signedPercent(arithmeticMean(AdGains)).c_str());
  return 0;
}
