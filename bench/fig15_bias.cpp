//===- bench/fig15_bias.cpp - Paper Figure 15 -----------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 15: the percentage of MDA instructions classified
/// by their own misaligned ratio (< 50%, = 50%, > 50%, = 100%).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <array>

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Figure 15: percentage of MDA instructions classified by "
         "misaligned ratio",
         "Ratio=100% dominates; only ~4.5% of MDA instructions are "
         "frequently aligned (<50%)");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();

  // Census runs are shared-nothing; fan them across the pool and lay the
  // table out from the index-addressed rows afterwards.
  std::vector<std::array<double, 4>> Shares(Benchmarks.size());
  parallelFor(Opt.Jobs, Benchmarks.size(), [&](size_t B) {
    guest::GuestImage Image = workloads::buildBenchmark(
        *Benchmarks[B], workloads::InputKind::Ref, Scale);
    reporting::CensusResult C = reporting::runCensus(Image);
    double Total = std::max(1u, C.Bias.total());
    Shares[B] = {C.Bias.Below50 / Total, C.Bias.Equal50 / Total,
                 C.Bias.Above50 / Total, C.Bias.Always / Total};
  });

  TablePrinter T({"Benchmark", "Ratio<50%", "Ratio=50%", "Ratio>50%",
                  "Ratio=100%"});
  double Sum[4] = {};
  size_t N = Benchmarks.size();
  for (size_t B = 0; B != N; ++B) {
    T.addRow({Benchmarks[B]->Name, percent(Shares[B][0]),
              percent(Shares[B][1]), percent(Shares[B][2]),
              percent(Shares[B][3])});
    for (int I = 0; I != 4; ++I)
      Sum[I] += Shares[B][I];
  }
  T.addRow({"Average", percent(Sum[0] / N), percent(Sum[1] / N),
            percent(Sum[2] / N), percent(Sum[3] / N)});
  printTable(T, "fig15_bias");
  return 0;
}
