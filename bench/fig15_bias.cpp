//===- bench/fig15_bias.cpp - Paper Figure 15 -----------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 15: the percentage of MDA instructions classified
/// by their own misaligned ratio (< 50%, = 50%, > 50%, = 100%).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Figure 15: percentage of MDA instructions classified by "
         "misaligned ratio",
         "Ratio=100% dominates; only ~4.5% of MDA instructions are "
         "frequently aligned (<50%)");

  workloads::ScaleConfig Scale = stdScale();
  TablePrinter T({"Benchmark", "Ratio<50%", "Ratio=50%", "Ratio>50%",
                  "Ratio=100%"});
  double Sum[4] = {};
  size_t N = 0;
  for (const workloads::BenchmarkInfo *Info :
       workloads::selectedBenchmarks()) {
    guest::GuestImage Image =
        workloads::buildBenchmark(*Info, workloads::InputKind::Ref, Scale);
    reporting::CensusResult C = reporting::runCensus(Image);
    double Total = std::max(1u, C.Bias.total());
    double Shares[4] = {C.Bias.Below50 / Total, C.Bias.Equal50 / Total,
                        C.Bias.Above50 / Total, C.Bias.Always / Total};
    T.addRow({Info->Name, percent(Shares[0]), percent(Shares[1]),
              percent(Shares[2]), percent(Shares[3])});
    for (int I = 0; I != 4; ++I)
      Sum[I] += Shares[I];
    ++N;
  }
  T.addRow({"Average", percent(Sum[0] / N), percent(Sum[1] / N),
            percent(Sum[2] / N), percent(Sum[3] / N)});
  printTable(T, "fig15_bias");
  return 0;
}
