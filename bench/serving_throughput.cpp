//===- bench/serving_throughput.cpp - Multi-tenant serving benchmark ------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-architecture benchmark (docs/SERVING.md): replay
/// thousands of heterogeneous translation requests — SPEC-shaped
/// benchmarks under EH and DPEH plus the hostile self-modifying suite —
/// against one process-wide TranslationService across a ThreadPool, and
/// measure what the shared cache buys:
///
///  * cold: a fresh cache, every translation is a compulsory miss;
///  * warm: the same request stream again, which must hit on every
///    translation (the replay re-derives identical content keys);
///  * disk-warmed: a fresh service loaded from the artifact save()
///    wrote, which must perform no re-translation at all.
///
/// Three guarantees this binary enforces (exit nonzero on violation):
///  * every run — every tenant, every phase, any --jobs — is
///    byte-identical (Checksum, MemoryHash) to its single-tenant
///    isolated-engine oracle;
///  * the warm and disk-warmed phases miss zero times (hit rate 1.0,
///    comfortably above the 0.9 serving floor) and spend strictly fewer
///    modeled translate cycles than the cold phase;
///  * the cache drains to zero live leases after every phase.
///
/// stdout (the per-tenant oracle table and phase verdicts) depends only
/// on modeled state, so CI diffs it across --jobs values.  Wall-clock
/// latency percentiles, aggregate MIPS and the cold-phase hit rate are
/// scheduling-dependent and go to stderr — and into the bench_perf.json
/// "serving" record via --perf-json [path].
///
/// Flags beyond the common set: --requests N (replay length per phase),
/// --cache-file PATH (keep the artifact instead of a scratch file).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "dbt/TranslationService.h"
#include "mda/PolicyFactory.h"
#include "workloads/Hostile.h"
#include "workloads/SpecPrograms.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

/// One distinct tenant: an image plus the policy it runs under.
struct Tenant {
  std::string Name;
  const char *PolicyName;
  guest::GuestImage Image;
  mda::PolicySpec Spec;
  dbt::RunResult Expected; ///< isolated-engine oracle
};

/// The serving configuration every request runs under: full dispatch
/// surface, analysis on so hostile SMC tenants exercise verdict
/// revocation.  The structural verifier stays off here — it re-walks
/// the whole code cache after every mutation, which is the right
/// paranoia for tests/serving_test.cpp but would drown the throughput
/// this bench exists to measure; oracle identity is still enforced on
/// every request.
dbt::EngineConfig servingConfig(dbt::TranslationService *Service) {
  dbt::EngineConfig Config;
  Config.Analysis = true;
  Config.HashDispatch = true;
  Config.InlineCaches = true;
  Config.Superblocks = true;
  Config.Service = Service;
  return Config;
}

dbt::RunResult runTenant(const Tenant &T, dbt::TranslationService *Service) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(T.Spec, &T.Image);
  dbt::Engine Engine(T.Image, *Policy, servingConfig(Service));
  return Engine.run();
}

/// The heterogeneous tenant catalog: SPEC-shaped programs under the two
/// production-shaped policies, plus every hostile self-modifying guest.
std::vector<Tenant> tenantCatalog(const workloads::ScaleConfig &Scale) {
  mda::PolicySpec Eh{mda::MechanismKind::ExceptionHandling, 50, true, 0,
                     false};
  mda::PolicySpec Dpeh{mda::MechanismKind::Dpeh, 50, false, 4, false};
  std::vector<Tenant> Tenants;
  for (const char *Name :
       {"164.gzip", "179.art", "433.milc", "482.sphinx3"}) {
    const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
    guest::GuestImage Image =
        workloads::buildBenchmark(*Info, workloads::InputKind::Ref, Scale);
    Tenants.push_back({Name, "eh", Image, Eh, {}});
    Tenants.push_back({Name, "dpeh", Image, Dpeh, {}});
  }
  for (const workloads::HostileProgram &P : workloads::hostileCatalog())
    Tenants.push_back({P.Name, "dpeh", P.Image, Dpeh, {}});
  return Tenants;
}

struct PhaseStats {
  double Seconds = 0.0;       ///< phase wall clock
  double P50Ms = 0.0;         ///< per-request latency percentiles
  double P99Ms = 0.0;
  double Mips = 0.0;          ///< aggregate wall-clock simulated MIPS
  double HitRate = 0.0;       ///< cache hits / (hits + misses)
  uint64_t Work = 0;          ///< interp + native insts, summed
  uint64_t Cycles = 0;        ///< modeled cycles.total, summed
  uint64_t TranslateCycles = 0; ///< modeled, summed over requests
  uint64_t Mismatches = 0;    ///< runs that diverged from their oracle
};

/// Modeled throughput at a nominal 1 GHz host: instructions executed
/// per modeled cycle, in MIPS.  Pure modeled state — deterministic at
/// any --jobs, unlike the wall-clock advisories.
double modeledMips(uint64_t Work, uint64_t Cycles) {
  return Cycles ? static_cast<double>(Work) /
                      static_cast<double>(Cycles) * 1000.0
                : 0.0;
}

uint64_t runWork(const dbt::RunResult &R) {
  return R.Counters.get("interp.insts") + R.Counters.get("host.insts");
}

/// Replay \p Requests (indices into \p Tenants) across the pool and
/// check every result against its tenant's oracle.
PhaseStats runPhase(const std::vector<Tenant> &Tenants,
                    const std::vector<size_t> &Requests,
                    dbt::TranslationService &Service, unsigned Jobs,
                    const char *PhaseName) {
  uint64_t Hits0 = Service.cache().hits();
  uint64_t Misses0 = Service.cache().misses();
  std::vector<double> LatencyMs(Requests.size());
  std::vector<uint64_t> HostInsts(Requests.size());
  std::vector<uint64_t> WorkInsts(Requests.size());
  std::vector<uint64_t> TotalCycles(Requests.size());
  std::vector<uint64_t> Translate(Requests.size());
  std::vector<uint8_t> Ok(Requests.size(), 0);
  auto T0 = std::chrono::steady_clock::now();
  parallelFor(Jobs, Requests.size(), [&](size_t I) {
    const Tenant &T = Tenants[Requests[I]];
    auto R0 = std::chrono::steady_clock::now();
    dbt::RunResult R = runTenant(T, &Service);
    LatencyMs[I] = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - R0)
                       .count();
    HostInsts[I] = R.Counters.get("host.insts");
    WorkInsts[I] = runWork(R);
    TotalCycles[I] = R.Cycles;
    Translate[I] = R.Counters.get("cycles.translate");
    Ok[I] = R.Error == T.Expected.Error &&
            R.Checksum == T.Expected.Checksum &&
            R.MemoryHash == T.Expected.MemoryHash;
    if (!Ok[I])
      std::fprintf(stderr,
                   "FAIL: %s/%s diverged from isolated oracle in %s "
                   "phase (checksum %016llx vs %016llx)\n",
                   T.Name.c_str(), T.PolicyName, PhaseName,
                   (unsigned long long)R.Checksum,
                   (unsigned long long)T.Expected.Checksum);
  });
  PhaseStats S;
  S.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  std::vector<double> Sorted = LatencyMs;
  std::sort(Sorted.begin(), Sorted.end());
  if (!Sorted.empty()) {
    S.P50Ms = Sorted[Sorted.size() / 2];
    S.P99Ms = Sorted[std::min(Sorted.size() - 1,
                              Sorted.size() * 99 / 100)];
  }
  uint64_t Insts = 0;
  for (size_t I = 0; I != Requests.size(); ++I) {
    Insts += HostInsts[I];
    S.Work += WorkInsts[I];
    S.Cycles += TotalCycles[I];
    S.TranslateCycles += Translate[I];
    S.Mismatches += Ok[I] ? 0 : 1;
  }
  if (S.Seconds > 0.0)
    S.Mips = static_cast<double>(Insts) / S.Seconds / 1e6;
  uint64_t Hits = Service.cache().hits() - Hits0;
  uint64_t Misses = Service.cache().misses() - Misses0;
  if (Hits + Misses)
    S.HitRate = static_cast<double>(Hits) /
                static_cast<double>(Hits + Misses);
  return S;
}

/// Merge the serving record into bench_perf.json: if \p Path already
/// holds the micro_components record, the "serving" object is appended
/// inside the top-level braces; otherwise a standalone file is written.
void writeServingPerfJson(const char *Path, size_t Requests,
                          const PhaseStats &Cold, const PhaseStats &Warm,
                          double ColdModeled, double WarmModeled) {
  std::string Existing;
  if (std::FILE *F = std::fopen(Path, "rb")) {
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Existing.append(Buf, N);
    std::fclose(F);
  }
  size_t Close = Existing.find_last_of('}');
  bool Merge = Close != std::string::npos &&
               Existing.find("\"serving\"") == std::string::npos;
  std::FILE *F = std::fopen(Path, "wb");
  if (!F) {
    std::fprintf(stderr, "serving_throughput: cannot write %s\n", Path);
    return;
  }
  std::string Head = "{\n";
  if (Merge) {
    Head = Existing.substr(0, Close);
    while (!Head.empty() && (Head.back() == '\n' || Head.back() == ' '))
      Head.pop_back();
    Head += ",\n";
  }
  std::fprintf(F,
               "%s  \"serving\": {\n"
               "    \"requests\": %zu,\n"
               "    \"serving_cold_mips\": %g,\n"
               "    \"serving_warm_mips\": %g,\n"
               "    \"serving_cold_modeled_mips\": %g,\n"
               "    \"serving_warm_modeled_mips\": %g,\n"
               "    \"warm_hit_rate\": %g,\n"
               "    \"cold_p50_ms\": %g,\n"
               "    \"cold_p99_ms\": %g,\n"
               "    \"warm_p50_ms\": %g,\n"
               "    \"warm_p99_ms\": %g\n"
               "  }\n}\n",
               Head.c_str(), Requests, Cold.Mips, Warm.Mips, ColdModeled,
               WarmModeled, Warm.HitRate, Cold.P50Ms, Cold.P99Ms,
               Warm.P50Ms, Warm.P99Ms);
  std::fclose(F);
  std::fprintf(stderr, "serving_throughput: perf record written to %s\n",
               Path);
}

void advisory(const char *Phase, const PhaseStats &S) {
  std::fprintf(stderr,
               "advisory: %-11s %7.2fs wall, %8.1f MIPS aggregate, "
               "p50 %7.3f ms, p99 %7.3f ms, hit rate %5.1f%% "
               "(machine-dependent)\n",
               Phase, S.Seconds, S.Mips, S.P50Ms, S.P99Ms,
               S.HitRate * 100.0);
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  size_t NumRequests = 1200;
  const char *CacheFile = nullptr;
  const char *PerfJsonPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--requests") == 0 && I + 1 < argc) {
      long long V = std::atoll(argv[++I]);
      if (V <= 0) {
        std::fprintf(stderr, "error: bad value for --requests\n");
        return 2;
      }
      NumRequests = static_cast<size_t>(V);
    } else if (std::strcmp(argv[I], "--cache-file") == 0 && I + 1 < argc) {
      CacheFile = argv[++I];
    } else if (std::strcmp(argv[I], "--perf-json") == 0) {
      PerfJsonPath = "results/bench_perf.json";
      if (I + 1 < argc && argv[I + 1][0] != '-')
        PerfJsonPath = argv[++I];
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n", argv[I]);
      return 2;
    }
  }

  banner("Serving throughput (beyond the paper): shared translation "
         "cache, cold vs warm vs disk-warmed",
         "warm replay hits every translation and skips re-translation; "
         "per-run results byte-identical to isolated oracles");

  // Per-request scale: a serving request is one short program run, not
  // a full figure-scale campaign, so divide the standard scale down
  // (overridable the usual way via --refs / MDABT_REFS).
  workloads::ScaleConfig Scale = stdScale(Opt);
  Scale.TotalRefs = std::max<uint64_t>(20'000, Scale.TotalRefs / 75);

  std::vector<Tenant> Tenants = tenantCatalog(Scale);
  for (Tenant &T : Tenants)
    T.Expected = runTenant(T, /*Service=*/nullptr);

  TablePrinter Table({"Tenant", "Policy", "Checksum", "MemHash", "Oracle"});
  int Failures = 0;
  for (const Tenant &T : Tenants) {
    bool Completed = T.Expected.Error == dbt::RunError::None;
    if (!Completed)
      ++Failures;
    Table.addRow({T.Name, T.PolicyName,
                  format("%016llx",
                         (unsigned long long)T.Expected.Checksum),
                  format("%016llx",
                         (unsigned long long)T.Expected.MemoryHash),
                  Completed ? "ok" : "INCOMPLETE"});
  }
  printTable(Table, "serving_throughput");

  // The replay stream: NumRequests heterogeneous requests round-robined
  // over the tenant catalog (every tenant appears ~equally often, so
  // concurrent same-tenant requests overlap in every phase).
  std::vector<size_t> Requests(NumRequests);
  for (size_t I = 0; I != NumRequests; ++I)
    Requests[I] = I % Tenants.size();

  // The deterministic cold-side reference: the isolated-oracle runs pay
  // full translation on every request.  (The concurrent cold phase's
  // own cache counters are scheduling-dependent — two in-flight
  // requests for the same tenant can race to publish — so the stdout
  // verdicts compare against this instead.)
  uint64_t IsolatedWork = 0, IsolatedCycles = 0, IsolatedTranslate = 0;
  for (size_t I : Requests) {
    const dbt::RunResult &E = Tenants[I].Expected;
    IsolatedWork += runWork(E);
    IsolatedCycles += E.Cycles;
    IsolatedTranslate += E.Counters.get("cycles.translate");
  }

  dbt::TranslationService Service;
  PhaseStats Cold = runPhase(Tenants, Requests, Service, Opt.Jobs, "cold");
  PhaseStats Warm = runPhase(Tenants, Requests, Service, Opt.Jobs, "warm");

  std::string Artifact = CacheFile ? CacheFile : "serving_cache.tmp.bin";
  std::string Err;
  if (!Service.cache().save(Artifact, &Err)) {
    std::fprintf(stderr, "FAIL: cache save failed: %s\n", Err.c_str());
    ++Failures;
  }
  dbt::TranslationService DiskService;
  if (!DiskService.load(Artifact, nullptr, &Err)) {
    std::fprintf(stderr, "FAIL: cache load failed: %s\n", Err.c_str());
    ++Failures;
  }
  PhaseStats Disk =
      runPhase(Tenants, Requests, DiskService, Opt.Jobs, "disk-warmed");
  if (!CacheFile)
    std::remove(Artifact.c_str());

  // --- modeled-state verdicts (deterministic; part of the CI diff) ----
  Failures += static_cast<int>(Cold.Mismatches + Warm.Mismatches +
                               Disk.Mismatches);
  std::printf("oracle identity: cold %zu/%zu, warm %zu/%zu, disk-warmed "
              "%zu/%zu requests byte-identical\n",
              Requests.size() - Cold.Mismatches, Requests.size(),
              Requests.size() - Warm.Mismatches, Requests.size(),
              Requests.size() - Disk.Mismatches, Requests.size());
  if (Warm.HitRate < 0.9) {
    std::printf("FAIL: warm hit rate %.3f below the 0.9 serving floor\n",
                Warm.HitRate);
    ++Failures;
  } else {
    std::printf("warm hit rate: %.0f%% (every translation served from "
                "the shared cache)\n", Warm.HitRate * 100.0);
  }
  if (Disk.HitRate < 1.0) {
    std::printf("FAIL: disk-warmed phase re-translated (hit rate %.3f)\n",
                Disk.HitRate);
    ++Failures;
  } else {
    std::printf("disk-warmed start: zero re-translation (hit rate "
                "100%%)\n");
  }
  if (Warm.TranslateCycles >= IsolatedTranslate) {
    std::printf("FAIL: warm modeled translate cycles did not shrink "
                "(%llu vs isolated %llu)\n",
                (unsigned long long)Warm.TranslateCycles,
                (unsigned long long)IsolatedTranslate);
    ++Failures;
  } else {
    std::printf("warm modeled translate cycles: %s vs isolated-cold %s "
                "(%s)\n",
                withCommas(Warm.TranslateCycles).c_str(),
                withCommas(IsolatedTranslate).c_str(),
                signedPercent(reporting::gainOver(IsolatedTranslate,
                                                  Warm.TranslateCycles))
                    .c_str());
  }
  double ColdModeled = modeledMips(IsolatedWork, IsolatedCycles);
  double WarmModeled = modeledMips(Warm.Work, Warm.Cycles);
  if (WarmModeled <= ColdModeled) {
    std::printf("FAIL: warm modeled throughput %.2f MIPS not above the "
                "isolated-cold %.2f MIPS\n", WarmModeled, ColdModeled);
    ++Failures;
  } else {
    std::printf("modeled aggregate throughput: %.2f MIPS warm vs %.2f "
                "MIPS isolated-cold (%s, 1 GHz nominal host)\n",
                WarmModeled, ColdModeled,
                signedPercent(WarmModeled / ColdModeled - 1.0).c_str());
  }
  uint64_t Leaked = Service.cache().liveLeases() +
                    DiskService.cache().liveLeases();
  if (Leaked) {
    std::printf("FAIL: %llu cache leases leaked at shutdown\n",
                (unsigned long long)Leaked);
    ++Failures;
  } else {
    std::printf("lease accounting: zero live leases after every phase\n");
  }

  // --- wall-clock advisories (stderr; machine-dependent) --------------
  advisory("cold", Cold);
  advisory("warm", Warm);
  advisory("disk-warmed", Disk);
  if (PerfJsonPath)
    writeServingPerfJson(PerfJsonPath, Requests.size(), Cold, Warm,
                         ColdModeled, WarmModeled);

  return Failures == 0 ? 0 : 1;
}
