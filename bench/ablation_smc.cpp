//===- bench/ablation_smc.cpp - SMC-coherence mechanism ablation ----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the guest-code coherence machinery under the hostile
/// workload suite (src/workloads/Hostile.h): what each invalidation
/// mechanism costs per self-modifying store — write-barrier hits,
/// precise translation invalidation, analysis re-runs and verdict
/// revocation, and the per-block SMC churn pin.  Not a paper
/// experiment: the CGO'09 paper assumes well-behaved SPEC guests; this
/// binary is the evidence that the MDA machinery stays *sound* when the
/// guest rewrites its own code.
///
/// Guarantees this binary enforces (exit nonzero on violation):
///  * oracle identity: every hostile program, under every one of the
///    paper's five MDA policies with Analysis+Verify on, reproduces the
///    pure interpreter's Checksum / MemoryHash / final registers
///    bit-exactly (the interpreter fetches fresh bytes every
///    instruction, so it is the SMC ground truth);
///  * zero verifier violations: every run completes with the host
///    code-cache verifier (invariant 8: no live translation built from
///    dirtied guest bytes) enabled;
///  * budget containment: the churn adversary's unbounded growth is
///    converted into a *typed* RunError by each budget ceiling, with
///    cumulative emitted code bytes bounded by the ceiling plus one
///    translation;
///  * determinism: the printed table depends only on modeled state, so
///    CI can diff it across --jobs values.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "guest/Interpreter.h"
#include "mda/PolicyFactory.h"
#include "workloads/Hostile.h"

#include <cinttypes>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

/// Observable final state under the pure interpreter (the SMC oracle:
/// it decodes fresh guest bytes for every instruction).
struct Oracle {
  uint32_t Gpr[guest::NumGPR] = {};
  uint64_t Checksum = 0;
  uint64_t MemoryHash = 0;
};

Oracle interpretOracle(const guest::GuestImage &Image) {
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::Interpreter Interp(Mem);
  Interp.run(Cpu, 500'000'000ULL);
  Oracle O;
  if (!Cpu.Halted) {
    std::fprintf(stderr, "error: oracle run of %s did not halt\n",
                 Image.Name.c_str());
    std::exit(1);
  }
  for (unsigned I = 0; I != guest::NumGPR; ++I)
    O.Gpr[I] = Cpu.Gpr[I];
  O.Checksum = Cpu.Checksum;
  O.MemoryHash = dbt::fnv1a(Mem.data(), Mem.size());
  return O;
}

/// Run one hostile image under one policy spec.  StaticProfiling
/// profiles the same image (there is no separate train input for the
/// synthetic adversaries).
dbt::RunResult runHostile(const guest::GuestImage &Image,
                          const mda::PolicySpec &Spec,
                          const dbt::EngineConfig &Config) {
  std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(Spec, &Image);
  dbt::Engine Engine(Image, *Policy, Config);
  return Engine.run();
}

bool matchesOracle(const dbt::RunResult &R, const Oracle &O) {
  if (!R.completed() || R.Checksum != O.Checksum ||
      R.MemoryHash != O.MemoryHash)
    return false;
  for (unsigned I = 0; I != guest::NumGPR; ++I)
    if (R.FinalCpu.Gpr[I] != O.Gpr[I])
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): guest-code coherence under hostile "
         "self-modifying guests",
         "every MDA policy stays byte-identical to the interpreter oracle "
         "while the guest rewrites its own code; budgets turn unbounded "
         "churn into typed errors");

  const struct {
    const char *Label;
    mda::PolicySpec Spec;
  } Cases[] = {
      {"direct", {mda::MechanismKind::Direct, 0, false, 0, false}},
      {"static", {mda::MechanismKind::StaticProfiling, 0, false, 0, false}},
      {"dyn@50", {mda::MechanismKind::DynamicProfiling, 50, false, 0, false}},
      {"eh+rearrange",
       {mda::MechanismKind::ExceptionHandling, 50, true, 0, false}},
      {"dpeh+retrans4", {mda::MechanismKind::Dpeh, 50, false, 4, false}},
  };
  constexpr size_t NumCases = sizeof(Cases) / sizeof(Cases[0]);

  std::vector<workloads::HostileProgram> Suite = workloads::hostileCatalog();

  // Interpreter oracles: the ground truth every engine run is diffed
  // against.  Cheap (tens of thousands of instructions), run serially.
  std::vector<Oracle> Oracles;
  for (const workloads::HostileProgram &P : Suite)
    Oracles.push_back(interpretOracle(P.Image));

  // Analysis + Verify on everywhere: the whole point is that the
  // alignment analysis (whose Elide verdicts SMC can invalidate) and
  // the structural verifier (invariant 8) are live while the guest
  // rewrites itself.
  dbt::EngineConfig Config;
  Config.Analysis = true;
  Config.Verify = true;
  // The adversarial dispatch path on top: superblocks fuse the patcher
  // with the code it patches (the configuration that forces the
  // episode-stop machinery, not just quarantine-before-next-dispatch),
  // and inline caches add the retirement surface SMC must also clear.
  Config.HashDispatch = true;
  Config.InlineCaches = true;
  Config.Superblocks = true;

  // --- coherence matrix: program x policy ----------------------------
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::HostileProgram &P : Suite) {
    for (size_t C = 0; C != NumCases; ++C) {
      reporting::MatrixCell Cell;
      Cell.Spec = Cases[C].Spec;
      Cell.Config = Config;
      Cell.Label = P.Name + " under " + Cases[C].Label;
      const guest::GuestImage *Image = &P.Image;
      mda::PolicySpec Spec = Cases[C].Spec;
      Cell.Run = [Image, Spec, Config]() {
        return runHostile(*Image, Spec, Config);
      };
      Cells.push_back(std::move(Cell));
    }
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, workloads::ScaleConfig(),
                                        Opt.Jobs);

  int Failures = 0;
  TablePrinter T({"Program", "Policy", "Cycles", "SmcStores", "Invals",
                  "Reanalyses", "Revoked", "Pins", "Translations",
                  "CodeBytes"});
  for (size_t P = 0; P != Suite.size(); ++P) {
    for (size_t C = 0; C != NumCases; ++C) {
      const dbt::RunResult &R = Results[P * NumCases + C];
      if (!matchesOracle(R, Oracles[P])) {
        std::fprintf(stderr,
                     "FAIL: %s diverged from the interpreter oracle under "
                     "%s (checksum %016llx vs %016llx, memhash %016llx vs "
                     "%016llx)\n",
                     Suite[P].Name.c_str(), Cases[C].Label,
                     (unsigned long long)R.Checksum,
                     (unsigned long long)Oracles[P].Checksum,
                     (unsigned long long)R.MemoryHash,
                     (unsigned long long)Oracles[P].MemoryHash);
        ++Failures;
      }
      T.addRow({Suite[P].Name, Cases[C].Label, withCommas(R.Cycles),
                withCommas(R.Counters.get("smc.stores")),
                withCommas(R.Counters.get("smc.invalidations")),
                withCommas(R.Counters.get("smc.reanalyses")),
                withCommas(R.Counters.get("smc.verdicts_revoked")),
                withCommas(R.Counters.get("smc.churn_pins")),
                withCommas(R.Counters.get("dbt.translations")),
                withCommas(R.Counters.get("budget.code_bytes_emitted"))});
    }
  }
  printTable(T, "ablation_smc");

  // The flip adversary must actually exercise the barrier under every
  // two-phase policy: a translated worker being patched means
  // invalidations, or the whole table above proves nothing.
  {
    const dbt::RunResult &Flip = Results[0 * NumCases + (NumCases - 1)];
    if (Flip.Counters.get("smc.invalidations") == 0) {
      std::fprintf(stderr,
                   "FAIL: smc.flip produced zero invalidations under "
                   "dpeh+retrans4 — the write barrier never fired\n");
      ++Failures;
    }
  }

  // --- budget containment on the churn adversary ---------------------
  // Each ceiling alone must convert unbounded churn into its own typed
  // RunError; the pin must instead *complete* the run (degradation).
  const guest::GuestImage Churn = workloads::smcChurnProgram(4, 4000);
  const Oracle ChurnOracle = interpretOracle(Churn);
  const mda::PolicySpec ChurnSpec = Cases[NumCases - 1].Spec;

  struct BudgetCase {
    const char *Label;
    dbt::BudgetConfig Budget;
    dbt::RunError Expect; ///< None = must complete (degradation path)
  };
  const BudgetCase BudgetCases[] = {
      {"max-translations=64", {64, 0, 0, 0},
       dbt::RunError::BudgetTranslations},
      {"max-code-bytes=32768", {0, 32768, 0, 0},
       dbt::RunError::BudgetCodeBytes},
      {"max-churn=128", {0, 0, 128, 0}, dbt::RunError::BudgetChurn},
      {"churn-pin@4", {0, 0, 0, 4}, dbt::RunError::None},
  };
  constexpr size_t NumBudget = sizeof(BudgetCases) / sizeof(BudgetCases[0]);

  std::vector<reporting::MatrixCell> BudgetCells;
  for (size_t B = 0; B != NumBudget; ++B) {
    reporting::MatrixCell Cell;
    Cell.Label = std::string("smc.churn under ") + BudgetCases[B].Label;
    dbt::EngineConfig BC = Config;
    BC.Budget = BudgetCases[B].Budget;
    const guest::GuestImage *Image = &Churn;
    Cell.Run = [Image, ChurnSpec, BC]() {
      return runHostile(*Image, ChurnSpec, BC);
    };
    BudgetCells.push_back(std::move(Cell));
  }
  std::vector<dbt::RunResult> BudgetResults =
      reporting::runMatrix(BudgetCells, workloads::ScaleConfig(), Opt.Jobs);

  TablePrinter BT({"Ceiling", "Outcome", "Translations", "CodeBytes",
                   "Churn", "Pins"});
  for (size_t B = 0; B != NumBudget; ++B) {
    const dbt::RunResult &R = BudgetResults[B];
    const BudgetCase &BC = BudgetCases[B];
    if (R.Error != BC.Expect) {
      std::fprintf(stderr,
                   "FAIL: smc.churn under %s ended with %s (expected %s)\n",
                   BC.Label, dbt::runErrorName(R.Error),
                   dbt::runErrorName(BC.Expect));
      ++Failures;
    }
    if (BC.Budget.MaxCodeBytes != 0) {
      // Bounded growth: the abort must land within one translation of
      // the ceiling, not after another flush-and-refill cycle.
      uint64_t Emitted = R.Counters.get("budget.code_bytes_emitted");
      if (Emitted > BC.Budget.MaxCodeBytes + 4096) {
        std::fprintf(stderr,
                     "FAIL: code-bytes ceiling %" PRIu64 " overshot to "
                     "%" PRIu64 "\n",
                     BC.Budget.MaxCodeBytes, Emitted);
        ++Failures;
      }
    }
    if (BC.Expect == dbt::RunError::None) {
      if (!matchesOracle(R, ChurnOracle)) {
        std::fprintf(stderr, "FAIL: churn-pin run diverged from the "
                             "interpreter oracle\n");
        ++Failures;
      }
      if (R.Counters.get("smc.churn_pins") == 0) {
        std::fprintf(stderr, "FAIL: churn-pin run never pinned a block\n");
        ++Failures;
      }
    }
    BT.addRow({BC.Label, dbt::runErrorName(R.Error),
               withCommas(R.Counters.get("dbt.translations")),
               withCommas(R.Counters.get("budget.code_bytes_emitted")),
               withCommas(R.Counters.get("dbt.supersedes") +
                          R.Counters.get("smc.invalidations")),
               withCommas(R.Counters.get("smc.churn_pins"))});
  }
  printTable(BT, "ablation_smc_budgets");

  if (Failures == 0)
    std::printf("smc ablation passed: %zu programs x %zu policies "
                "byte-identical to the interpreter oracle\n",
                Suite.size(), NumCases);
  return Failures == 0 ? 0 : 1;
}
