//===- bench/table3_undetected.cpp - Paper Table III ----------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table III: the number of MDAs that dynamic profiling at
/// heating threshold 50 cannot detect — measured as the misalignment
/// traps taken at runtime under the DynamicProfiling policy (each
/// undetected MDA traps on every occurrence).
///
/// Doubles as the soundness tripwire for the static alignment analysis:
/// the same census that feeds the table knows, per static instruction,
/// whether it ever misaligned.  Any site the census observed misaligning
/// that the analysis calls provably-aligned is a hard error — an unsound
/// verdict would let the engine elide the MDA machinery from a site that
/// actually traps.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/AlignmentAnalysis.h"
#include "guest/MdaCensus.h"

#include <atomic>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

/// Interpret \p Info's REF binary with the census observer and
/// cross-check every observed-misaligning site against the analysis
/// verdict.  Returns the number of contradictions (must be zero).
uint64_t crossCheckAnalysis(const workloads::BenchmarkInfo &Info,
                            const workloads::ScaleConfig &Scale) {
  guest::GuestImage Image =
      workloads::buildBenchmark(Info, workloads::InputKind::Ref, Scale);
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::MdaCensus Census;
  guest::Interpreter Interp(Mem);
  Interp.setObserver(&Census);
  Interp.run(Cpu);

  analysis::AnalysisResult Ana = analysis::analyzeAlignment(Image);
  uint64_t Contradictions = 0;
  for (const auto &KV : Census.sites()) {
    if (KV.second.Mis == 0)
      continue;
    auto It = Ana.Sites.find(KV.first);
    if (It == Ana.Sites.end())
      continue;
    if (It->second.Verdict == analysis::AlignVerdict::Aligned) {
      std::fprintf(stderr,
                   "UNSOUND: %s pc=0x%x observed %llu misalignments but "
                   "the analysis calls it provably-aligned\n",
                   Info.Name, KV.first,
                   static_cast<unsigned long long>(KV.second.Mis));
      ++Contradictions;
    }
  }
  return Contradictions;
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Table III: MDAs not detected by dynamic profiling "
         "(heating threshold = 50)",
         "huge for gzip/art/xalancbmk/bwaves/milc/povray/soplex; zero or "
         "near-zero for ammp/lbm/sphinx3");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks)
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::DynamicProfiling, 50, false, 0,
                  false}});
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "Paper", "Measured (scaled)"});
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    T.addRow({Benchmarks[B]->Name,
              paperCount(static_cast<uint64_t>(
                  Benchmarks[B]->PaperDynUndetected)),
              withCommas(Results[B].Counters.get("dbt.fault_traps"))});
  }
  printTable(T, "table3_undetected");

  // Soundness tripwire: census-observed misalignments vs the static
  // alignment analysis, per benchmark, fanned across the worker pool.
  std::atomic<uint64_t> Contradictions{0};
  parallelFor(Opt.Jobs, Benchmarks.size(), [&](size_t B) {
    Contradictions += crossCheckAnalysis(*Benchmarks[B], Scale);
  });
  if (Contradictions != 0) {
    std::fprintf(stderr,
                 "table3_undetected FAILED: %llu unsound analysis "
                 "verdicts\n",
                 static_cast<unsigned long long>(Contradictions.load()));
    return 1;
  }
  std::printf("analysis soundness cross-check passed (0 contradictions "
              "across %zu benchmarks)\n",
              Benchmarks.size());
  return 0;
}
