//===- bench/table3_undetected.cpp - Paper Table III ----------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table III: the number of MDAs that dynamic profiling at
/// heating threshold 50 cannot detect — measured as the misalignment
/// traps taken at runtime under the DynamicProfiling policy (each
/// undetected MDA traps on every occurrence).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Table III: MDAs not detected by dynamic profiling "
         "(heating threshold = 50)",
         "huge for gzip/art/xalancbmk/bwaves/milc/povray/soplex; zero or "
         "near-zero for ammp/lbm/sphinx3");

  workloads::ScaleConfig Scale = stdScale(Opt);
  std::vector<const workloads::BenchmarkInfo *> Benchmarks =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Benchmarks)
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::DynamicProfiling, 50, false, 0,
                  false}});
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "Paper", "Measured (scaled)"});
  for (size_t B = 0; B != Benchmarks.size(); ++B) {
    T.addRow({Benchmarks[B]->Name,
              paperCount(static_cast<uint64_t>(
                  Benchmarks[B]->PaperDynUndetected)),
              withCommas(Results[B].Counters.get("dbt.fault_traps"))});
  }
  printTable(T, "table3_undetected");
  return 0;
}
