//===- bench/ablation_aot.cpp - Static AOT pre-translation ablation -------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the sixth mechanism column — static whole-binary CFG
/// recovery (analysis/CfgRecovery.h) feeding an AOT pre-translator
/// (dbt/AotTranslator.h) — against the paper's two-phase dynamic DBT,
/// across the full 21-benchmark matrix in all three EngineConfig::Aot
/// modes: off (pure DBT baseline), full (everything statically proven
/// is installed before the first guest instruction) and hybrid
/// (pre-translations install lazily at dispatch miss; dynamic DBT owns
/// only frontier residue).  Reported per row: startup cost (modeled
/// cycles spent on recovery + pre-translation before the run) against
/// steady-state modeled MIPS (work per post-startup cycle at a nominal
/// 1 GHz), plus the aot.{blocks,coverage_pct,fallback_blocks} telemetry.
///
/// Guarantees this binary enforces (exit nonzero on violation):
///  * architectural identity: Checksum and MemoryHash byte-identical
///    across {off, full, hybrid} for every benchmark — AOT may only
///    move translation cost, never what the code computes;
///  * verifier cleanliness: HostVerifier (including the AOT
///    reachability invariant, check 10) reports zero issues in every
///    run;
///  * static coverage: >= 90% of dynamically discovered block heads are
///    statically recovered on every row, and any fallback residue is
///    attributable to flagged frontier sites;
///  * the payoff: hybrid steady-state modeled MIPS is no worse than the
///    two-phase DBT baseline in aggregate and by per-benchmark geomean
///    (individual low-reuse rows may trade slightly worse — their lazy
///    install cycles never amortize — and are reported as advisories).
///
/// Determinism: the printed table depends only on modeled state, so CI
/// diffs it across --jobs values.  --perf-json merges an "aot" record
/// (startup cycles, steady-state MIPS, coverage) into bench_perf.json
/// for tools/check_perf_floor.sh.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mda/PolicyFactory.h"

#include <cmath>
#include <cstring>

using namespace mdabt;
using namespace mdabt::bench;

namespace {

struct ModeRow {
  const char *Name;
  dbt::AotMode Mode;
};

const ModeRow Modes[] = {
    {"off", dbt::AotMode::Off},
    {"full", dbt::AotMode::Full},
    {"hybrid", dbt::AotMode::Hybrid},
};

dbt::EngineConfig aotConfig(dbt::AotMode Mode) {
  dbt::EngineConfig C;
  // The verifier stays on in every mode so the AOT output checker and
  // the reachability invariant gate every published figure; analysis
  // on in every mode so the off row is the *same* plan pipeline, just
  // without pre-translation.
  C.Analysis = true;
  C.Verify = true;
  C.Aot = Mode;
  return C;
}

/// Work retired by one run: interpreted + native host instructions
/// (the serving_throughput convention).
uint64_t runWork(const dbt::RunResult &R) {
  return R.Counters.get("interp.insts") + R.Counters.get("host.insts");
}

/// Modeled throughput at a nominal 1 GHz host over the post-startup
/// cycles.  Pure modeled state — deterministic at any --jobs.
double steadyMips(const dbt::RunResult &R) {
  uint64_t Startup = R.Counters.get("aot.startup_cycles");
  uint64_t Cycles = R.Cycles > Startup ? R.Cycles - Startup : 0;
  return Cycles ? static_cast<double>(runWork(R)) /
                      static_cast<double>(Cycles) * 1000.0
                : 0.0;
}

std::string fixed1(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", V);
  return Buf;
}

/// Merge the "aot" record into bench_perf.json next to the records the
/// other bench binaries own (the serving_throughput merge pattern).
void writeAotPerfJson(const char *Path, uint64_t Blocks,
                      uint64_t CoveragePct, uint64_t Fallback,
                      uint64_t StartupCycles, double SteadyMips,
                      double BaselineMips) {
  std::string Existing;
  if (std::FILE *F = std::fopen(Path, "rb")) {
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Existing.append(Buf, N);
    std::fclose(F);
  }
  size_t Close = Existing.find_last_of('}');
  bool Merge = Close != std::string::npos &&
               Existing.find("\"aot\"") == std::string::npos;
  std::FILE *F = std::fopen(Path, "wb");
  if (!F) {
    std::fprintf(stderr, "ablation_aot: cannot write %s\n", Path);
    return;
  }
  std::string Head = "{\n";
  if (Merge) {
    Head = Existing.substr(0, Close);
    while (!Head.empty() && (Head.back() == '\n' || Head.back() == ' '))
      Head.pop_back();
    Head += ",\n";
  }
  std::fprintf(F,
               "%s  \"aot\": {\n"
               "    \"aot_blocks\": %llu,\n"
               "    \"aot_coverage_pct\": %llu,\n"
               "    \"aot_fallback_blocks\": %llu,\n"
               "    \"aot_startup_cycles\": %llu,\n"
               "    \"aot_steady_mips\": %g,\n"
               "    \"aot_dbt_baseline_mips\": %g\n"
               "  }\n}\n",
               Head.c_str(), (unsigned long long)Blocks,
               (unsigned long long)CoveragePct,
               (unsigned long long)Fallback,
               (unsigned long long)StartupCycles, SteadyMips,
               BaselineMips);
  std::fclose(F);
  std::fprintf(stderr, "ablation_aot: perf record written to %s\n", Path);
}

} // namespace

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  const char *PerfJsonPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--perf-json") == 0) {
      PerfJsonPath = "results/bench_perf.json";
      if (I + 1 < argc && argv[I + 1][0] != '-')
        PerfJsonPath = argv[++I];
    } else {
      std::fprintf(stderr, "error: unknown argument %s\n", argv[I]);
      return 2;
    }
  }

  banner("Ablation (beyond the paper): static AOT pre-translation vs "
         "two-phase DBT under EH",
         "hybrid trades a bounded startup bill for a first-touch-native "
         "steady state; results byte-identical in every mode");

  workloads::ScaleConfig Scale = stdScale(Opt);
  mda::PolicySpec Spec;
  Spec.Kind = mda::MechanismKind::ExceptionHandling;

  std::vector<const workloads::BenchmarkInfo *> Selected =
      workloads::selectedBenchmarks();
  std::vector<reporting::MatrixCell> Cells;
  for (const workloads::BenchmarkInfo *Info : Selected)
    for (const ModeRow &M : Modes)
      Cells.push_back({.Info = Info,
                       .Spec = Spec,
                       .Config = aotConfig(M.Mode),
                       .Label = std::string(Info->Name) + " aot/" + M.Name});
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  constexpr size_t NumModes = sizeof(Modes) / sizeof(Modes[0]);
  int Failures = 0;
  uint64_t AggBlocks = 0, AggFallback = 0, AggStartup = 0;
  uint64_t AggWork[NumModes] = {};
  uint64_t AggSteadyCycles[NumModes] = {};
  double CovSum = 0.0;
  double RatioLogSum = 0.0;

  TablePrinter T({"Benchmark", "Mode", "Cycles", "StartupCyc", "SteadyMIPS",
                  "Blocks", "Frontier", "Cov%", "Fallback"});
  for (size_t B = 0; B != Selected.size(); ++B) {
    const dbt::RunResult &Off = Results[B * NumModes];
    for (size_t M = 0; M != NumModes; ++M) {
      const dbt::RunResult &R = Results[B * NumModes + M];
      if (R.Checksum != Off.Checksum || R.MemoryHash != Off.MemoryHash) {
        std::fprintf(stderr,
                     "FAIL: %s diverged architecturally under aot=%s "
                     "(checksum %016llx vs %016llx, memhash %016llx vs "
                     "%016llx)\n",
                     Selected[B]->Name, Modes[M].Name,
                     (unsigned long long)R.Checksum,
                     (unsigned long long)Off.Checksum,
                     (unsigned long long)R.MemoryHash,
                     (unsigned long long)Off.MemoryHash);
        ++Failures;
      }
      if (R.Counters.get("verify.issues") != 0) {
        std::fprintf(stderr, "FAIL: %s aot=%s reported %llu verifier "
                             "issues\n",
                     Selected[B]->Name, Modes[M].Name,
                     (unsigned long long)R.Counters.get("verify.issues"));
        ++Failures;
      }
      uint64_t Startup = R.Counters.get("aot.startup_cycles");
      uint64_t Cov = R.Counters.get("aot.coverage_pct");
      uint64_t Fallback = R.Counters.get("aot.fallback_blocks");
      uint64_t Frontier = R.Counters.get("aot.frontier_sites");
      AggWork[M] += runWork(R);
      AggSteadyCycles[M] += R.Cycles > Startup ? R.Cycles - Startup : 0;
      if (Modes[M].Mode != dbt::AotMode::Off) {
        // The coverage criterion: the static set must explain >= 90% of
        // the dynamically discovered heads, and any residue must be
        // attributable to a flagged frontier site.
        if (Cov < 90) {
          std::fprintf(stderr,
                       "FAIL: %s aot=%s static coverage %llu%% < 90%%\n",
                       Selected[B]->Name, Modes[M].Name,
                       (unsigned long long)Cov);
          ++Failures;
        }
        if (Fallback > 0 && Frontier == 0) {
          std::fprintf(stderr,
                       "FAIL: %s aot=%s has %llu fallback blocks but no "
                       "frontier site to attribute them to\n",
                       Selected[B]->Name, Modes[M].Name,
                       (unsigned long long)Fallback);
          ++Failures;
        }
      }
      if (Modes[M].Mode == dbt::AotMode::Hybrid) {
        AggBlocks += R.Counters.get("aot.blocks");
        AggFallback += Fallback;
        AggStartup += Startup;
        CovSum += static_cast<double>(Cov);
        double OffMips = steadyMips(Off);
        double HybMips = steadyMips(R);
        if (HybMips < OffMips)
          std::fprintf(stderr,
                       "advisory: %s hybrid steady %.1f modeled MIPS < "
                       "DBT baseline %.1f (low-reuse row; install cycles "
                       "did not amortize)\n",
                       Selected[B]->Name, HybMips, OffMips);
        if (OffMips > 0.0 && HybMips > 0.0)
          RatioLogSum += std::log(HybMips / OffMips);
      }
      T.addRow({Selected[B]->Name, Modes[M].Name, withCommas(R.Cycles),
                withCommas(Startup), fixed1(steadyMips(R)),
                withCommas(R.Counters.get("aot.blocks")),
                withCommas(Frontier),
                Modes[M].Mode == dbt::AotMode::Off ? std::string("-")
                                                   : std::to_string(Cov),
                withCommas(Fallback)});
    }
  }
  printTable(T, "ablation_aot");

  double BaselineMips =
      AggSteadyCycles[0] ? static_cast<double>(AggWork[0]) /
                               static_cast<double>(AggSteadyCycles[0]) *
                               1000.0
                         : 0.0;
  double HybridMips =
      AggSteadyCycles[2] ? static_cast<double>(AggWork[2]) /
                               static_cast<double>(AggSteadyCycles[2]) *
                               1000.0
                         : 0.0;
  double MeanCov = Selected.empty()
                       ? 0.0
                       : CovSum / static_cast<double>(Selected.size());
  double GeomeanGain =
      Selected.empty()
          ? 1.0
          : std::exp(RatioLogSum / static_cast<double>(Selected.size()));
  std::printf("aggregate: %llu statically recovered blocks, %.1f%% mean "
              "coverage, %llu fallback heads, %s hybrid startup cycles\n",
              (unsigned long long)AggBlocks, MeanCov,
              (unsigned long long)AggFallback,
              withCommas(AggStartup).c_str());
  std::printf("steady state: DBT baseline %.1f modeled MIPS, hybrid %.1f "
              "modeled MIPS (geomean per-bench gain %+.1f%%)\n\n",
              BaselineMips, HybridMips, (GeomeanGain - 1.0) * 100.0);
  if (HybridMips < BaselineMips) {
    std::fprintf(stderr,
                 "FAIL: aggregate hybrid steady %.1f modeled MIPS < DBT "
                 "baseline %.1f\n",
                 HybridMips, BaselineMips);
    ++Failures;
  }
  if (GeomeanGain < 1.0) {
    std::fprintf(stderr,
                 "FAIL: per-benchmark geomean hybrid/baseline steady gain "
                 "%+.1f%% is negative\n",
                 (GeomeanGain - 1.0) * 100.0);
    ++Failures;
  }

  if (PerfJsonPath && Failures == 0)
    writeAotPerfJson(PerfJsonPath, AggBlocks,
                     static_cast<uint64_t>(MeanCov + 0.5), AggFallback,
                     AggStartup, HybridMips, BaselineMips);

  return Failures == 0 ? 0 : 1;
}
