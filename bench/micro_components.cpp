//===- bench/micro_components.cpp - Component microbenchmarks -------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the infrastructure itself:
/// interpreter and host-simulator throughput, translation speed, cache
/// model, codecs, and MDA stub generation.  These are not paper results;
/// they bound the wall-clock cost of the experiment harness.
///
//===----------------------------------------------------------------------===//

#include "dbt/Engine.h"
#include "dbt/FusionRules.h"
#include "dbt/GuestBlock.h"
#include "dbt/Translator.h"
#include "guest/Assembler.h"
#include "guest/Encoding.h"
#include "guest/Interpreter.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"
#include "host/MdaSequences.h"
#include "mda/Policies.h"
#include "reporting/Experiment.h"
#include "support/CacheModel.h"
#include "support/RNG.h"
#include "support/ThreadPool.h"
#include "workloads/Kernels.h"
#include "workloads/SpecCatalog.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

using namespace mdabt;

namespace {

guest::GuestImage sumLoop(uint32_t Iters, bool Misaligned) {
  guest::ProgramBuilder B("bench");
  uint32_t Buf = B.dataReserve(Iters * 4 + 16, 8);
  B.movri(0, static_cast<int32_t>(Buf + (Misaligned ? 1 : 0)));
  B.movri(1, 0);
  B.movri(2, 0);
  guest::ProgramBuilder::Label Loop = B.here();
  B.stl(guest::memIdx(0, 1, 2, 0), 1);
  B.ldl(3, guest::memIdx(0, 1, 2, 0));
  B.add(2, 3);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(guest::Cond::B, Loop);
  B.chk(2);
  B.halt();
  return B.build();
}

void BM_InterpreterThroughput(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(10000, false);
  guest::GuestMemory Mem;
  uint64_t Insts = 0;
  for (auto _ : State) {
    Mem.loadImage(Image);
    guest::GuestCPU Cpu;
    Cpu.reset(Image);
    guest::Interpreter Interp(Mem);
    Insts += Interp.run(Cpu);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_InterpreterThroughput);

void BM_EngineDpehThroughput(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(10000, true);
  uint64_t Cycles = 0;
  for (auto _ : State) {
    mda::DpehPolicy Policy(50);
    dbt::Engine Engine(Image, Policy);
    dbt::RunResult R = Engine.run();
    reporting::checkRunCompleted(R, "BM_EngineDpehThroughput");
    Cycles += R.Cycles;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Cycles));
  State.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_EngineDpehThroughput);

void BM_TranslateBlock(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(16, false);
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  // The hot loop body block.
  dbt::GuestBlock Entry = dbt::discoverBlock(Mem, Image.Entry);
  dbt::GuestBlock Body = dbt::discoverBlock(Mem, Entry.endPc());
  host::CodeSpace Code;
  dbt::Translator Trans(Code);
  uint64_t Insts = 0;
  for (auto _ : State) {
    dbt::Translation T = Trans.translate(
        Body,
        [](uint32_t, const guest::GuestInst &) {
          return dbt::MemPlan::Inline;
        });
    benchmark::DoNotOptimize(T.EndWord);
    Insts += Body.size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_TranslateBlock);

void BM_GuestDecode(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(16, false);
  uint64_t Count = 0;
  for (auto _ : State) {
    size_t Off = 0;
    while (Off < Image.Code.size()) {
      guest::GuestInst I;
      bool Ok = guest::decode(Image.Code.data(), Image.Code.size(), Off, I);
      benchmark::DoNotOptimize(Ok);
      if (!Ok)
        break;
      Off += I.Length;
      ++Count;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_GuestDecode);

void BM_HostDecode(benchmark::State &State) {
  host::CodeSpace Code;
  {
    host::HostAssembler Asm(Code);
    for (int I = 0; I != 64; ++I)
      host::emitMdaStore(Asm, 4, 1, 2, I);
    Asm.finish();
  }
  uint64_t Count = 0;
  for (auto _ : State) {
    for (uint32_t W = 0; W != Code.size(); ++W) {
      host::HostInst I;
      bool Ok = host::decodeHost(Code.word(W), I);
      benchmark::DoNotOptimize(Ok);
      ++Count;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_HostDecode);

void BM_CacheModel(benchmark::State &State) {
  MemoryHierarchy Hier;
  RNG Rng(7);
  std::vector<uint64_t> Addrs(4096);
  for (uint64_t &A : Addrs)
    A = Rng.below(1 << 22);
  uint64_t Count = 0;
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (uint64_t A : Addrs)
      Sum += Hier.data(A);
    benchmark::DoNotOptimize(Sum);
    Count += Addrs.size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_CacheModel);

void BM_MdaStubGeneration(benchmark::State &State) {
  host::HostInst Faulting =
      host::memInst(host::HostOp::Ldl, 3, 8, 2);
  uint64_t Count = 0;
  for (auto _ : State) {
    host::CodeSpace Code;
    dbt::Translator Trans(Code);
    for (int I = 0; I != 64; ++I) {
      dbt::Translator::StubInfo S = Trans.emitStub(Faulting, 0);
      benchmark::DoNotOptimize(S.End);
    }
    Count += 64;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_MdaStubGeneration);

//===----------------------------------------------------------------------===//
// bench_perf.json: the throughput record the CI perf-smoke job uploads.
// Everything below measures wall clock, so it is advisory, not a figure.
//===----------------------------------------------------------------------===//

double elapsedSeconds(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

/// Host-simulator throughput in simulated MIPS: a tight 4-instruction
/// loop (aligned load + add + count-down + branch) so the measurement is
/// dominated by the fetch/decode/dispatch path the predecode cache and
/// the cache-model line filter optimize.
double hostSimMips(bool Predecode) {
  constexpr uint32_t Iters = 2'000'000;
  host::CodeSpace Code;
  {
    host::HostAssembler Asm(Code);
    Asm.materialize32(1, Iters);
    Asm.materialize32(2, 4096); // 8-byte-aligned scratch address
    host::HostAssembler::Label Loop = Asm.newLabel();
    Asm.bind(Loop);
    Asm.mem(host::HostOp::Ldl, 3, 0, 2);
    Asm.op(host::HostOp::Addq, 4, 3, 4);
    Asm.opl(host::HostOp::Subq, 1, 1, 1);
    Asm.bne(1, Loop);
    Asm.srv(host::SrvFunc::Halt);
  }
  guest::GuestMemory Mem;
  MemoryHierarchy Hier;
  host::CostModel Cost;
  double Best = 0.0;
  for (int Rep = 0; Rep != 3; ++Rep) {
    host::HostMachine Machine(Code, Mem, Hier, Cost);
    Machine.UsePredecode = Predecode;
    auto T0 = std::chrono::steady_clock::now();
    host::ExitInfo E = Machine.run(0);
    double Sec = elapsedSeconds(T0);
    if (E.K != host::ExitInfo::Halt || Sec <= 0.0)
      return 0.0;
    Best = std::max(
        Best, static_cast<double>(Machine.Instructions) / Sec / 1e6);
  }
  return Best;
}

/// Interpreter throughput in simulated guest MIPS.
double interpreterMips() {
  guest::GuestImage Image = sumLoop(300000, false);
  guest::GuestMemory Mem;
  double Best = 0.0;
  for (int Rep = 0; Rep != 3; ++Rep) {
    Mem.loadImage(Image);
    guest::GuestCPU Cpu;
    Cpu.reset(Image);
    guest::Interpreter Interp(Mem);
    auto T0 = std::chrono::steady_clock::now();
    uint64_t Insts = Interp.run(Cpu);
    double Sec = elapsedSeconds(T0);
    if (Sec <= 0.0)
      return 0.0;
    Best = std::max(Best, static_cast<double>(Insts) / Sec / 1e6);
  }
  return Best;
}

/// Wall-clock of a small (benchmark x policy) matrix at a given job
/// count; the jobs=1/jobs=N pair bounds the fan-out win on this machine.
double matrixSeconds(unsigned Jobs) {
  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 60000;
  const char *Names[] = {"164.gzip", "179.art", "410.bwaves", "433.milc"};
  std::vector<reporting::MatrixCell> Cells;
  for (const char *Name : Names) {
    const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
    Cells.push_back(
        {.Info = Info,
         .Spec = {mda::MechanismKind::ExceptionHandling, 50, false, 0,
                  false}});
    Cells.push_back(
        {.Info = Info, .Spec = {mda::MechanismKind::Dpeh, 50, false, 0,
                                false}});
  }
  auto T0 = std::chrono::steady_clock::now();
  reporting::runPolicyMatrixChecked(Cells, Scale, Jobs);
  return elapsedSeconds(T0);
}

/// Hot call/ret kernel (one callee returning alternately to two call
/// sites), same shape as bench/ablation_dispatch's `k.callret`: the
/// dispatch-bound workload where hash dispatch, inline caches, and
/// superblocks show up in wall clock, not just in simulated cycles (the
/// synthesized SPEC programs keep their indirect branches cold).
guest::GuestImage callRetKernel(uint32_t Iters) {
  guest::ProgramBuilder B("k.callret");
  uint32_t Buf = B.dataReserve(64, 8);
  guest::ProgramBuilder::Label F = B.newLabel();
  B.movri(1, 0);
  B.movri(0, static_cast<int32_t>(Buf));
  B.movri(2, 0);
  guest::ProgramBuilder::Label Loop = B.here();
  B.call(F);
  B.call(F);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(guest::Cond::B, Loop);
  B.chk(2);
  B.halt();
  B.bind(F);
  B.stl(guest::mem(0, 0), 1);
  B.ldl(3, guest::mem(0, 0));
  B.add(2, 3);
  B.ret();
  return B.build();
}

/// End-to-end engine throughput (host instructions of translated code
/// executed per wall-clock second) on the dispatch-bound kernel under
/// one dispatch configuration.  Every monitor round-trip the mechanisms
/// eliminate is time spent in C++ episode bookkeeping instead of the
/// host simulator, so the mechanisms move this number directly.
double engineDispatchMips(const dbt::EngineConfig &Config) {
  guest::GuestImage Image = callRetKernel(200000);
  double Best = 0.0;
  for (int Rep = 0; Rep != 3; ++Rep) {
    mda::DpehPolicy Policy(50);
    dbt::Engine Engine(Image, Policy, Config);
    auto T0 = std::chrono::steady_clock::now();
    dbt::RunResult R = Engine.run();
    double Sec = elapsedSeconds(T0);
    reporting::checkRunCompleted(R, "engineDispatchMips");
    if (Sec <= 0.0)
      return 0.0;
    Best = std::max(
        Best,
        static_cast<double>(R.Counters.get("host.insts")) / Sec / 1e6);
  }
  return Best;
}

/// Fused-vs-unfused engine throughput and code density on the
/// fusion-dense memcpy kernel (workloads::buildFusionMemcpyKernel): the
/// workload where the peephole fusion table (dbt/FusionRules.h) fires
/// on nearly every hot-loop instruction window.  Returns wall-clock
/// *guest* MIPS (guest instructions retired per wall-clock second —
/// fusion shrinks the host work per guest instruction, so useful
/// throughput is the number that must rise) and the
/// host-instructions-per-guest-instruction density itself.
struct FusionPerf {
  double Mips = 0.0;
  double Hipgi = 0.0;
};

FusionPerf engineFusionPerf(uint32_t Mask) {
  constexpr uint32_t Words = 256, Rounds = 2000;
  guest::GuestImage Image =
      workloads::buildFusionMemcpyKernel(Words, Rounds);
  uint64_t GuestInsts;
  {
    guest::GuestMemory Mem;
    Mem.loadImage(Image);
    guest::GuestCPU Cpu;
    Cpu.reset(Image);
    GuestInsts = guest::Interpreter(Mem).run(Cpu);
  }
  dbt::EngineConfig Config;
  Config.Fusion = Mask != 0;
  Config.FusionMask = Mask;
  FusionPerf P;
  for (int Rep = 0; Rep != 3; ++Rep) {
    mda::DpehPolicy Policy(50);
    dbt::Engine Engine(Image, Policy, Config);
    auto T0 = std::chrono::steady_clock::now();
    dbt::RunResult R = Engine.run();
    double Sec = elapsedSeconds(T0);
    reporting::checkRunCompleted(R, "engineFusionPerf");
    if (Sec <= 0.0)
      return {};
    uint64_t Host = R.Counters.get("host.insts");
    P.Mips =
        std::max(P.Mips, static_cast<double>(GuestInsts) / Sec / 1e6);
    if (GuestInsts != 0)
      P.Hipgi =
          static_cast<double>(Host) / static_cast<double>(GuestInsts);
  }
  return P;
}

void writeBenchPerfJson(const char *Path) {
  double LegacyMips = hostSimMips(false);
  double PredecodeMips = hostSimMips(true);
  double Gain =
      LegacyMips > 0.0 ? PredecodeMips / LegacyMips - 1.0 : 0.0;
  double InterpMips = interpreterMips();
  // The fan-out pair must be two *real* measurements: on a one-core
  // default the old `Jobs > 1 ? ... : Serial` shortcut recorded jobs=1
  // with jobs1_seconds == jobsN_seconds, which made the record useless
  // as a regression floor.  Always time at least two jobs.
  unsigned Jobs = std::max(2u, ThreadPool::defaultJobs());
  double Serial = matrixSeconds(1);
  double Fanned = matrixSeconds(Jobs);

  dbt::EngineConfig Off, Hash, Ic, Super, AllOn;
  Hash.HashDispatch = true;
  Ic.InlineCaches = true;
  Super.Superblocks = true;
  AllOn.HashDispatch = AllOn.InlineCaches = AllOn.Superblocks = true;
  double DispatchBase = engineDispatchMips(Off);
  double DispatchHash = engineDispatchMips(Hash);
  double DispatchIc = engineDispatchMips(Ic);
  double DispatchSuper = engineDispatchMips(Super);
  double DispatchAll = engineDispatchMips(AllOn);
  double DispatchGain =
      DispatchBase > 0.0 ? DispatchAll / DispatchBase - 1.0 : 0.0;

  FusionPerf FusionOff = engineFusionPerf(0);
  FusionPerf FusionOn = engineFusionPerf(dbt::FusionMaskAll);
  double FusionGain =
      FusionOff.Mips > 0.0 ? FusionOn.Mips / FusionOff.Mips - 1.0 : 0.0;
  double HipgiReduction =
      FusionOff.Hipgi > 0.0 ? 1.0 - FusionOn.Hipgi / FusionOff.Hipgi
                            : 0.0;

  std::filesystem::create_directories(
      std::filesystem::path(Path).parent_path());
  std::ofstream Out(Path);
  Out << "{\n";
  Out << "  \"host_sim\": {\n";
  Out << "    \"predecode_mips\": " << PredecodeMips << ",\n";
  Out << "    \"legacy_mips\": " << LegacyMips << ",\n";
  Out << "    \"predecode_gain\": " << Gain << "\n";
  Out << "  },\n";
  Out << "  \"interpreter_mips\": " << InterpMips << ",\n";
  Out << "  \"dispatch\": {\n";
  Out << "    \"baseline_mips\": " << DispatchBase << ",\n";
  Out << "    \"hash_mips\": " << DispatchHash << ",\n";
  Out << "    \"ic_mips\": " << DispatchIc << ",\n";
  Out << "    \"superblock_mips\": " << DispatchSuper << ",\n";
  Out << "    \"all_on_mips\": " << DispatchAll << ",\n";
  Out << "    \"all_on_gain\": " << DispatchGain << "\n";
  Out << "  },\n";
  Out << "  \"fusion\": {\n";
  Out << "    \"off_guest_mips\": " << FusionOff.Mips << ",\n";
  Out << "    \"on_guest_mips\": " << FusionOn.Mips << ",\n";
  Out << "    \"on_gain\": " << FusionGain << ",\n";
  Out << "    \"hipgi_off\": " << FusionOff.Hipgi << ",\n";
  Out << "    \"hipgi_on\": " << FusionOn.Hipgi << ",\n";
  Out << "    \"hipgi_reduction\": " << HipgiReduction << "\n";
  Out << "  },\n";
  Out << "  \"matrix\": {\n";
  Out << "    \"jobs\": " << Jobs << ",\n";
  Out << "    \"jobs1_seconds\": " << Serial << ",\n";
  Out << "    \"jobsN_seconds\": " << Fanned << "\n";
  Out << "  }\n";
  Out << "}\n";
  std::printf("bench_perf: host-sim %.1f MIPS predecoded vs %.1f legacy "
              "(%+.1f%%), interpreter %.1f MIPS, engine dispatch %.1f "
              "MIPS baseline vs %.1f all-on (%+.1f%%), fusion %.1f "
              "guest-MIPS off vs %.1f on (%+.1f%%, host/guest %.3f -> "
              "%.3f), matrix %.2fs at jobs=1 vs %.2fs at jobs=%u -> %s\n",
              PredecodeMips, LegacyMips, Gain * 100.0, InterpMips,
              DispatchBase, DispatchAll, DispatchGain * 100.0,
              FusionOff.Mips, FusionOn.Mips, FusionGain * 100.0,
              FusionOff.Hipgi, FusionOn.Hipgi, Serial, Fanned, Jobs,
              Path);
}

} // namespace

int main(int argc, char **argv) {
  // --perf-json [path] (default results/bench_perf.json) records the
  // throughput artifact after the google-benchmark suite runs; remaining
  // flags pass through to google-benchmark.
  const char *PerfJsonPath = nullptr;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--perf-json") == 0) {
      PerfJsonPath = "results/bench_perf.json";
      if (I + 1 < argc && argv[I + 1][0] != '-')
        PerfJsonPath = argv[++I];
      continue;
    }
    argv[Out++] = argv[I];
  }
  argv[Out] = nullptr;
  argc = Out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (PerfJsonPath)
    writeBenchPerfJson(PerfJsonPath);
  return 0;
}
