//===- bench/micro_components.cpp - Component microbenchmarks -------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the infrastructure itself:
/// interpreter and host-simulator throughput, translation speed, cache
/// model, codecs, and MDA stub generation.  These are not paper results;
/// they bound the wall-clock cost of the experiment harness.
///
//===----------------------------------------------------------------------===//

#include "dbt/Engine.h"
#include "dbt/GuestBlock.h"
#include "dbt/Translator.h"
#include "guest/Assembler.h"
#include "guest/Encoding.h"
#include "guest/Interpreter.h"
#include "host/HostAssembler.h"
#include "host/HostMachine.h"
#include "host/MdaSequences.h"
#include "mda/Policies.h"
#include "reporting/Experiment.h"
#include "support/CacheModel.h"
#include "support/RNG.h"

#include <benchmark/benchmark.h>

using namespace mdabt;

namespace {

guest::GuestImage sumLoop(uint32_t Iters, bool Misaligned) {
  guest::ProgramBuilder B("bench");
  uint32_t Buf = B.dataReserve(Iters * 4 + 16, 8);
  B.movri(0, static_cast<int32_t>(Buf + (Misaligned ? 1 : 0)));
  B.movri(1, 0);
  B.movri(2, 0);
  guest::ProgramBuilder::Label Loop = B.here();
  B.stl(guest::memIdx(0, 1, 2, 0), 1);
  B.ldl(3, guest::memIdx(0, 1, 2, 0));
  B.add(2, 3);
  B.addi(1, 1);
  B.cmpi(1, static_cast<int32_t>(Iters));
  B.jcc(guest::Cond::B, Loop);
  B.chk(2);
  B.halt();
  return B.build();
}

void BM_InterpreterThroughput(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(10000, false);
  guest::GuestMemory Mem;
  uint64_t Insts = 0;
  for (auto _ : State) {
    Mem.loadImage(Image);
    guest::GuestCPU Cpu;
    Cpu.reset(Image);
    guest::Interpreter Interp(Mem);
    Insts += Interp.run(Cpu);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_InterpreterThroughput);

void BM_EngineDpehThroughput(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(10000, true);
  uint64_t Cycles = 0;
  for (auto _ : State) {
    mda::DpehPolicy Policy(50);
    dbt::Engine Engine(Image, Policy);
    dbt::RunResult R = Engine.run();
    reporting::checkRunCompleted(R, "BM_EngineDpehThroughput");
    Cycles += R.Cycles;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Cycles));
  State.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_EngineDpehThroughput);

void BM_TranslateBlock(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(16, false);
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  // The hot loop body block.
  dbt::GuestBlock Entry = dbt::discoverBlock(Mem, Image.Entry);
  dbt::GuestBlock Body = dbt::discoverBlock(Mem, Entry.endPc());
  host::CodeSpace Code;
  dbt::Translator Trans(Code);
  uint64_t Insts = 0;
  for (auto _ : State) {
    dbt::Translation T = Trans.translate(
        Body,
        [](uint32_t, const guest::GuestInst &) {
          return dbt::MemPlan::Inline;
        });
    benchmark::DoNotOptimize(T.EndWord);
    Insts += Body.size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_TranslateBlock);

void BM_GuestDecode(benchmark::State &State) {
  guest::GuestImage Image = sumLoop(16, false);
  uint64_t Count = 0;
  for (auto _ : State) {
    size_t Off = 0;
    while (Off < Image.Code.size()) {
      guest::GuestInst I;
      bool Ok = guest::decode(Image.Code.data(), Image.Code.size(), Off, I);
      benchmark::DoNotOptimize(Ok);
      if (!Ok)
        break;
      Off += I.Length;
      ++Count;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_GuestDecode);

void BM_HostDecode(benchmark::State &State) {
  host::CodeSpace Code;
  {
    host::HostAssembler Asm(Code);
    for (int I = 0; I != 64; ++I)
      host::emitMdaStore(Asm, 4, 1, 2, I);
    Asm.finish();
  }
  uint64_t Count = 0;
  for (auto _ : State) {
    for (uint32_t W = 0; W != Code.size(); ++W) {
      host::HostInst I;
      bool Ok = host::decodeHost(Code.word(W), I);
      benchmark::DoNotOptimize(Ok);
      ++Count;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_HostDecode);

void BM_CacheModel(benchmark::State &State) {
  MemoryHierarchy Hier;
  RNG Rng(7);
  std::vector<uint64_t> Addrs(4096);
  for (uint64_t &A : Addrs)
    A = Rng.below(1 << 22);
  uint64_t Count = 0;
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (uint64_t A : Addrs)
      Sum += Hier.data(A);
    benchmark::DoNotOptimize(Sum);
    Count += Addrs.size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_CacheModel);

void BM_MdaStubGeneration(benchmark::State &State) {
  host::HostInst Faulting =
      host::memInst(host::HostOp::Ldl, 3, 8, 2);
  uint64_t Count = 0;
  for (auto _ : State) {
    host::CodeSpace Code;
    dbt::Translator Trans(Code);
    for (int I = 0; I != 64; ++I) {
      dbt::Translator::StubInfo S = Trans.emitStub(Faulting, 0);
      benchmark::DoNotOptimize(S.End);
    }
    Count += 64;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Count));
}
BENCHMARK(BM_MdaStubGeneration);

} // namespace

BENCHMARK_MAIN();
