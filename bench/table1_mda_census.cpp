//===- bench/table1_mda_census.cpp - Paper Table I ------------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table I: per-benchmark MDA census (NMI = number of static
/// instructions referencing misaligned data, total MDA count, MDA/total
/// reference ratio) over all 54 SPEC CPU2000/2006 benchmarks, REF input.
/// Paper counts are printed alongside the measured (scaled) values.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Table I: MDAs in SPEC CPU2000 and CPU2006",
         "ratio column matches the paper per benchmark; NMI keeps the "
         "paper's ordering; counts are run-length scaled");

  workloads::ScaleConfig Scale = stdScale(Opt);
  const std::vector<workloads::BenchmarkInfo> &Catalog =
      workloads::specCatalog();

  // All 54 census runs are independent; fan them across the pool and
  // aggregate serially from the index-addressed results.
  std::vector<reporting::CensusResult> Census(Catalog.size());
  parallelFor(Opt.Jobs, Catalog.size(), [&](size_t B) {
    guest::GuestImage Image = workloads::buildBenchmark(
        Catalog[B], workloads::InputKind::Ref, Scale);
    Census[B] = reporting::runCensus(Image);
  });

  TablePrinter T({"Benchmark", "NMI(paper)", "NMI", "MDAs(paper)", "MDAs",
                  "Ratio(paper)", "Ratio"});
  std::vector<double> Ratios;
  uint64_t TotalMdas = 0;
  uint32_t TotalNmi = 0;
  size_t N = 0;
  for (size_t B = 0; B != Catalog.size(); ++B) {
    const workloads::BenchmarkInfo &Info = Catalog[B];
    const reporting::CensusResult &C = Census[B];
    T.addRow({Info.Name, std::to_string(Info.PaperNmi),
              std::to_string(C.Nmi), paperCount(static_cast<uint64_t>(
                                         Info.PaperMdas)),
              withCommas(C.Mdas), percent(Info.PaperRatio),
              percent(C.Ratio)});
    Ratios.push_back(C.Ratio + 1e-9);
    TotalMdas += C.Mdas;
    TotalNmi += C.Nmi;
    ++N;
  }
  T.addRow({"Average", "597", std::to_string(TotalNmi / N), "9.53E+09",
            withCommas(TotalMdas / N), "1.44%",
            percent(arithmeticMean(Ratios))});
  printTable(T, "table1_mda_census");
  return 0;
}
