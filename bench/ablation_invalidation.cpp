//===- bench/ablation_invalidation.cpp - Invalidation granularity ---------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for paper section IV-C's aside: "this is somewhat similar to
/// the code cache flush policy employed in Dynamo except that Dynamo
/// flush the entire code cache while our BT invalidates translated code
/// at block granularity."  Runs DPEH + retranslation with both
/// invalidation styles on the behaviour-changing benchmarks.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mda/Policies.h"

using namespace mdabt;
using namespace mdabt::bench;

int main() {
  banner("Ablation (beyond the paper): block-granularity invalidation vs "
         "Dynamo-style full flush (DPEH + retranslation@4)",
         "full flush re-pays translation for untouched blocks, so block "
         "granularity should win wherever retranslation triggers");

  workloads::ScaleConfig Scale = stdScale();
  const char *Subset[] = {"164.gzip", "179.art",    "410.bwaves",
                          "483.xalancbmk", "450.soplex", "453.povray"};

  TablePrinter T({"Benchmark", "block-granular", "full-flush", "Gain",
                  "flushes", "translations(flush)"});
  std::vector<double> Gains;
  for (const char *Name : Subset) {
    const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
    guest::GuestImage Image =
        workloads::buildBenchmark(*Info, workloads::InputKind::Ref, Scale);

    mda::DpehOptions Opts;
    Opts.RetranslateThreshold = 4;

    mda::DpehPolicy PolicyA(50, Opts);
    dbt::Engine EngineA(Image, PolicyA);
    dbt::RunResult Block = EngineA.run();
    reporting::checkRunCompleted(Block,
                                 std::string(Name) + " (block-granular)");

    dbt::EngineConfig Dynamo;
    Dynamo.FlushOnSupersede = true;
    mda::DpehPolicy PolicyB(50, Opts);
    dbt::Engine EngineB(Image, PolicyB, Dynamo);
    dbt::RunResult Flush = EngineB.run();
    reporting::checkRunCompleted(Flush,
                                 std::string(Name) + " (full-flush)");

    double Gain = reporting::gainOver(Flush.Cycles, Block.Cycles);
    Gains.push_back(Gain);
    T.addRow({Name, withCommas(Block.Cycles), withCommas(Flush.Cycles),
              signedPercent(Gain),
              withCommas(Flush.Counters.get("dbt.flushes")),
              withCommas(Flush.Counters.get("dbt.translations"))});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains)), "",
            ""});
  printTable(T, "ablation_invalidation");
  return 0;
}
