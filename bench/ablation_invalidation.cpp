//===- bench/ablation_invalidation.cpp - Invalidation granularity ---------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for paper section IV-C's aside: "this is somewhat similar to
/// the code cache flush policy employed in Dynamo except that Dynamo
/// flush the entire code cache while our BT invalidates translated code
/// at block granularity."  Runs DPEH + retranslation with both
/// invalidation styles on the behaviour-changing benchmarks.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mda/Policies.h"

using namespace mdabt;
using namespace mdabt::bench;

int main(int argc, char **argv) {
  Options Opt = parseArgs(argc, argv);
  banner("Ablation (beyond the paper): block-granularity invalidation vs "
         "Dynamo-style full flush (DPEH + retranslation@4)",
         "full flush re-pays translation for untouched blocks, so block "
         "granularity should win wherever retranslation triggers");

  workloads::ScaleConfig Scale = stdScale(Opt);
  const char *Subset[] = {"164.gzip", "179.art",    "410.bwaves",
                          "483.xalancbmk", "450.soplex", "453.povray"};

  // Each cell rebuilds its own guest image so runs stay shared-nothing
  // under --jobs; image construction is deterministic, so results match
  // the old build-once-run-twice loop exactly.
  std::vector<reporting::MatrixCell> Cells;
  for (const char *Name : Subset) {
    const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
    for (bool FullFlush : {false, true}) {
      Cells.push_back(
          {.Info = Info,
           .Label = std::string(Name) +
                    (FullFlush ? " (full-flush)" : " (block-granular)"),
           .Run = [Info, FullFlush, Scale] {
             guest::GuestImage Image = workloads::buildBenchmark(
                 *Info, workloads::InputKind::Ref, Scale);
             mda::DpehOptions Opts;
             Opts.RetranslateThreshold = 4;
             dbt::EngineConfig Config;
             Config.FlushOnSupersede = FullFlush;
             mda::DpehPolicy Policy(50, Opts);
             dbt::Engine Engine(Image, Policy, Config);
             return Engine.run();
           }});
    }
  }
  std::vector<dbt::RunResult> Results =
      reporting::runPolicyMatrixChecked(Cells, Scale, Opt.Jobs);

  TablePrinter T({"Benchmark", "block-granular", "full-flush", "Gain",
                  "flushes", "translations(flush)"});
  std::vector<double> Gains;
  for (size_t B = 0; B != std::size(Subset); ++B) {
    const dbt::RunResult &Block = Results[B * 2];
    const dbt::RunResult &Flush = Results[B * 2 + 1];
    double Gain = reporting::gainOver(Flush.Cycles, Block.Cycles);
    Gains.push_back(Gain);
    T.addRow({Subset[B], withCommas(Block.Cycles),
              withCommas(Flush.Cycles), signedPercent(Gain),
              withCommas(Flush.Counters.get("dbt.flushes")),
              withCommas(Flush.Counters.get("dbt.translations"))});
  }
  T.addRow({"Average", "", "", signedPercent(arithmeticMean(Gains)), "",
            ""});
  printTable(T, "ablation_invalidation");
  return 0;
}
