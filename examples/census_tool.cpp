//===- examples/census_tool.cpp - MDA census & translation inspector ------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inspect any Table-I benchmark the way the paper's section II does:
///
///   census_tool [benchmark] [train|ref]
///
/// Prints the MDA census (NMI, count, ratio), the Fig. 15 bias
/// breakdown, the ten hottest MDA instructions with their own ratios,
/// and — to show what the DBT actually emits — the annotated translation
/// of the block containing the hottest MDA site under the DPEH policy.
///
//===----------------------------------------------------------------------===//

#include "dbt/Disassembly.h"
#include "dbt/GuestBlock.h"
#include "dbt/Translator.h"
#include "guest/Encoding.h"
#include "mda/Policies.h"
#include "reporting/Experiment.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace mdabt;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "410.bwaves";
  workloads::InputKind Input =
      (Argc > 2 && std::strcmp(Argv[2], "train") == 0)
          ? workloads::InputKind::Train
          : workloads::InputKind::Ref;
  const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
  if (!Info) {
    std::fprintf(stderr, "error: unknown benchmark '%s'\n", Name);
    return 1;
  }

  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 400000;
  guest::GuestImage Image = workloads::buildBenchmark(*Info, Input, Scale);

  // ---- census ---------------------------------------------------------------
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::MdaCensus Census;
  guest::Interpreter Interp(Mem);
  Interp.setObserver(&Census);
  Interp.run(Cpu);

  std::printf("%s (%s input): %s refs, %s MDAs (%s), NMI %u\n", Info->Name,
              Input == workloads::InputKind::Ref ? "ref" : "train",
              withCommas(Census.totalRefs()).c_str(),
              withCommas(Census.totalMdas()).c_str(),
              percent(Census.ratio()).c_str(), Census.nmi());
  std::printf("paper: %s MDAs (%s), NMI %u\n",
              paperCount(static_cast<uint64_t>(Info->PaperMdas)).c_str(),
              percent(Info->PaperRatio).c_str(), Info->PaperNmi);

  guest::MdaCensus::BiasBreakdown B = Census.biasBreakdown();
  std::printf("\nFig. 15 classes: <50%%: %u  =50%%: %u  >50%%: %u  "
              "=100%%: %u\n",
              B.Below50, B.Equal50, B.Above50, B.Always);

  // ---- hottest MDA instructions ---------------------------------------------
  std::vector<std::pair<uint32_t, guest::MdaCensus::SiteStats>> Sites(
      Census.sites().begin(), Census.sites().end());
  std::sort(Sites.begin(), Sites.end(), [](const auto &L, const auto &R) {
    return L.second.Mis > R.second.Mis;
  });
  std::printf("\nhottest MDA instructions:\n");
  size_t Shown = 0;
  for (const auto &KV : Sites) {
    if (KV.second.Mis == 0 || Shown == 10)
      break;
    guest::GuestInst Inst;
    std::string Text = "<outside code segment>";
    if (KV.first >= Image.CodeBase &&
        guest::decode(Image.Code.data(), Image.Code.size(),
                      KV.first - Image.CodeBase, Inst))
      Text = guest::disassemble(Inst, KV.first);
    std::printf("  %06x  %-34s %10s MDAs of %10s refs (%s) %s\n", KV.first,
                Text.c_str(), withCommas(KV.second.Mis).c_str(),
                withCommas(KV.second.Refs).c_str(),
                percent(static_cast<double>(KV.second.Mis) /
                        static_cast<double>(KV.second.Refs))
                    .c_str(),
                KV.second.IsStore ? "[store]" : "[load]");
    ++Shown;
  }

  // ---- what the translator emits for the hottest site ----------------------
  if (!Sites.empty() && Sites[0].second.Mis != 0) {
    uint32_t HotPc = Sites[0].first;
    // Find the start of the enclosing block: walk from the code base.
    guest::GuestMemory Mem2;
    Mem2.loadImage(Image);
    uint32_t BlockStart = Image.Entry;
    uint32_t Pc = Image.Entry;
    while (Pc < Image.codeEnd()) {
      dbt::GuestBlock Blk = dbt::discoverBlock(Mem2, Pc);
      if (HotPc >= Blk.StartPc && HotPc < Blk.endPc()) {
        BlockStart = Blk.StartPc;
        break;
      }
      Pc = Blk.endPc();
    }
    dbt::GuestBlock Blk = dbt::discoverBlock(Mem2, BlockStart);
    host::CodeSpace Code;
    dbt::Translator Trans(Code);
    // DPEH plan: inline the sequence for the known-hot site.
    dbt::Translation T = Trans.translate(
        Blk, [&](uint32_t InstPc, const guest::GuestInst &) {
          auto It = Census.sites().find(InstPc);
          return It != Census.sites().end() && It->second.Mis != 0
                     ? dbt::MemPlan::Inline
                     : dbt::MemPlan::Normal;
        });
    std::printf("\nDPEH translation of the enclosing block:\n%s",
                dbt::dumpTranslation(T, Code).c_str());
  }
  return 0;
}
