//===- examples/shared_library.cpp - MDAs from shared libraries -----------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's section-II observation: "more than 90% of
/// MDAs ... actually come from shared libraries" — even an application
/// whose own data is perfectly aligned misaligns constantly inside a
/// libc-style memcpy called with arbitrary pointers.
///
/// The guest program is an aligned application that repeatedly calls a
/// word-at-a-time `memcpy`-like routine on byte-offset buffers.  We run
/// the MDA census to attribute MDAs to app vs library code, then compare
/// how the Direct method and DPEH cope.
///
//===----------------------------------------------------------------------===//

#include "dbt/Engine.h"
#include "guest/Assembler.h"
#include "guest/GuestMemory.h"
#include "guest/Interpreter.h"
#include "guest/MdaCensus.h"
#include "mda/Policies.h"
#include "reporting/Experiment.h"
#include "support/Format.h"

#include <cstdio>
#include <memory>

using namespace mdabt;

namespace {

struct Program {
  guest::GuestImage Image;
  uint32_t LibStart; ///< guest PC where "library" code begins
};

/// App: aligned array sweeps + calls to lib_memcpy(dst, src, words)
/// where src is misaligned (a parser handing an offset pointer to libc).
Program buildProgram() {
  using namespace guest;
  ProgramBuilder B("shared-library");
  uint32_t Src = B.dataReserve(4096 + 8, 8);
  uint32_t Dst = B.dataReserve(4096 + 8, 8);
  uint32_t AppBuf = B.dataReserve(4096, 8);

  ProgramBuilder::Label LibMemcpy = B.newLabel();

  // App main loop: 400 iterations of aligned work + one library call.
  B.movri(6, 0); // esi: outer counter
  ProgramBuilder::Label Outer = B.here();

  // Aligned app work: sweep AppBuf with 4-byte accesses.
  B.movri(0, static_cast<int32_t>(AppBuf));
  B.movri(1, 0);
  ProgramBuilder::Label AppLoop = B.here();
  B.stl(memIdx(0, 1, 2, 0), 6);
  B.ldl(2, memIdx(0, 1, 2, 0));
  B.addi(1, 1);
  B.cmpi(1, 512);
  B.jcc(Cond::B, AppLoop);
  B.chk(2);

  // Library call: copy 128 words from Src+1 (misaligned) to Dst.
  B.movri(0, static_cast<int32_t>(Src + 1)); // eax = src (misaligned)
  B.movri(3, static_cast<int32_t>(Dst));     // ebx = dst
  B.movri(2, 128);                           // edx = word count
  B.call(LibMemcpy);

  B.addi(6, 1);
  B.cmpi(6, 400);
  B.jcc(Cond::B, Outer);
  B.chk(6);
  B.halt();

  // ---- "shared library" code: word-at-a-time memcpy ----------------------
  uint32_t LibStart = B.codeAddress();
  B.bind(LibMemcpy);
  B.movri(1, 0); // ecx = i
  ProgramBuilder::Label CopyLoop = B.here();
  B.ldl(5, memIdx(0, 1, 2, 0));  // ebp = src[i]   (misaligned!)
  B.stl(memIdx(3, 1, 2, 0), 5);  // dst[i] = ebp   (aligned)
  B.addi(1, 1);
  B.cmp(1, 2);
  B.jcc(Cond::B, CopyLoop);
  B.chk(5);
  B.ret();

  return {B.build(), LibStart};
}

} // namespace

int main() {
  Program P = buildProgram();

  // ---- census: who produces the MDAs? -------------------------------------
  guest::GuestMemory Mem;
  Mem.loadImage(P.Image);
  guest::GuestCPU Cpu;
  Cpu.reset(P.Image);
  guest::MdaCensus Census;
  guest::Interpreter Interp(Mem);
  Interp.setObserver(&Census);
  Interp.run(Cpu);

  uint64_t AppMdas = 0, LibMdas = 0;
  for (const auto &KV : Census.sites()) {
    if (KV.first >= P.LibStart)
      LibMdas += KV.second.Mis;
    else
      AppMdas += KV.second.Mis;
  }
  std::printf("MDA census: %s total MDAs over %s references (%s)\n",
              withCommas(Census.totalMdas()).c_str(),
              withCommas(Census.totalRefs()).c_str(),
              percent(Census.ratio()).c_str());
  std::printf("  from application code: %s\n",
              withCommas(AppMdas).c_str());
  std::printf("  from the shared library: %s (%.1f%% of all MDAs)\n",
              withCommas(LibMdas).c_str(),
              100.0 * static_cast<double>(LibMdas) /
                  static_cast<double>(Census.totalMdas()));

  // ---- how the mechanisms cope ---------------------------------------------
  std::printf("\nEven an ISV-aligned application pays for library MDAs; "
              "the BT system must handle them:\n");
  struct Row {
    const char *Name;
    std::unique_ptr<dbt::MdaPolicy> Policy;
  };
  Row Rows[3];
  Rows[0] = {"Direct (QEMU-style)", std::make_unique<mda::DirectPolicy>()};
  Rows[1] = {"DynamicProfiling@50",
             std::make_unique<mda::DynamicProfilePolicy>(50)};
  Rows[2] = {"DPEH", std::make_unique<mda::DpehPolicy>(50)};
  for (Row &R : Rows) {
    dbt::Engine Engine(P.Image, *R.Policy);
    dbt::RunResult Result = Engine.run();
    reporting::checkRunCompleted(Result, R.Name);
    std::printf("  %-20s %12s cycles, %6s traps, checksum %016llx\n",
                R.Name, withCommas(Result.Cycles).c_str(),
                withCommas(Result.Counters.get("dbt.fault_traps")).c_str(),
                static_cast<unsigned long long>(Result.Checksum));
  }
  return 0;
}
