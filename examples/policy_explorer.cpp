//===- examples/policy_explorer.cpp - Interactive mechanism comparison ----==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run any Table-I benchmark under any MDA handling mechanism and print
/// the full cycle/event breakdown:
///
///   policy_explorer [benchmark] [policy] [refs]
///
/// policy: direct | static | dyn@N | eh | eh+rearrange | dpeh |
///         dpeh+retrans | dpeh+mv | all (default)
/// benchmark: any Table-I name (default 410.bwaves); "list" lists them.
///
//===----------------------------------------------------------------------===//

#include "reporting/Experiment.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace mdabt;

namespace {

bool parsePolicy(const std::string &Name, mda::PolicySpec &Spec) {
  using mda::MechanismKind;
  if (Name == "direct") {
    Spec = {MechanismKind::Direct, 0, false, 0, false};
    return true;
  }
  if (Name == "static") {
    Spec = {MechanismKind::StaticProfiling, 0, false, 0, false};
    return true;
  }
  if (Name.rfind("dyn@", 0) == 0) {
    Spec = {MechanismKind::DynamicProfiling,
            static_cast<uint32_t>(std::atoi(Name.c_str() + 4)), false, 0,
            false};
    return Spec.Threshold != 0;
  }
  if (Name == "eh") {
    Spec = {MechanismKind::ExceptionHandling, 50, false, 0, false};
    return true;
  }
  if (Name == "eh+rearrange") {
    Spec = {MechanismKind::ExceptionHandling, 50, true, 0, false};
    return true;
  }
  if (Name == "dpeh") {
    Spec = {MechanismKind::Dpeh, 50, false, 0, false};
    return true;
  }
  if (Name == "dpeh+retrans") {
    Spec = {MechanismKind::Dpeh, 50, false, 4, false};
    return true;
  }
  if (Name == "dpeh+mv") {
    Spec = {MechanismKind::Dpeh, 50, false, 0, true};
    return true;
  }
  return false;
}

void runOne(const workloads::BenchmarkInfo &Info,
            const mda::PolicySpec &Spec,
            const workloads::ScaleConfig &Scale) {
  dbt::RunResult R = reporting::runPolicyChecked(Info, Spec, Scale);
  std::printf("--- %s under %s ---\n", Info.Name,
              mda::policySpecName(Spec).c_str());
  std::printf("cycles: %s  (status: %s)\n",
              withCommas(R.Cycles).c_str(), dbt::runErrorName(R.Error));
  for (const auto &Entry : R.Counters.entries())
    std::printf("  %-22s %s\n", Entry.first.c_str(),
                withCommas(Entry.second).c_str());
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BenchName = Argc > 1 ? Argv[1] : "410.bwaves";
  std::string PolicyName = Argc > 2 ? Argv[2] : "all";
  workloads::ScaleConfig Scale;
  Scale.TotalRefs = Argc > 3 ? std::strtoull(Argv[3], nullptr, 10)
                             : 1'000'000;

  if (BenchName == "list") {
    for (const workloads::BenchmarkInfo &B : workloads::specCatalog())
      std::printf("%-16s %s  NMI=%u  ratio=%s%s\n", B.Name, B.Suite,
                  B.PaperNmi, percent(B.PaperRatio).c_str(),
                  B.Selected ? "  [selected]" : "");
    return 0;
  }

  const workloads::BenchmarkInfo *Info =
      workloads::findBenchmark(BenchName);
  if (!Info) {
    std::fprintf(stderr,
                 "error: unknown benchmark '%s' (try 'list')\n",
                 BenchName.c_str());
    return 1;
  }

  if (PolicyName == "all") {
    const char *All[] = {"direct", "static",       "dyn@50",
                         "eh",     "eh+rearrange", "dpeh",
                         "dpeh+retrans", "dpeh+mv"};
    for (const char *P : All) {
      mda::PolicySpec Spec;
      parsePolicy(P, Spec);
      runOne(*Info, Spec, Scale);
    }
    return 0;
  }

  mda::PolicySpec Spec;
  if (!parsePolicy(PolicyName, Spec)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n",
                 PolicyName.c_str());
    return 1;
  }
  runOne(*Info, Spec, Scale);
  return 0;
}
