//===- examples/adaptive_phases.cpp - Phase-changing alignment ------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A workload whose alignment behaviour changes mid-run — the case the
/// paper's adaptive machinery (exception handling, retranslation,
/// multi-version code) exists for:
///
///   phase 1: the hot loop's buffer is aligned (profiling sees nothing);
///   phase 2: the program rebinds the buffer pointer to an odd address
///            (every access misaligns from then on);
///   phase 3: a second loop alternates aligned/misaligned per iteration.
///
/// Compare how each mechanism absorbs the change: profiling-based
/// methods trap forever, exception handling patches once per site, and
/// multi-version code handles the mixed phase without traps.
///
//===----------------------------------------------------------------------===//

#include "dbt/Engine.h"
#include "guest/Assembler.h"
#include "mda/PolicyFactory.h"
#include "reporting/Experiment.h"
#include "support/Format.h"

#include <cstdio>

using namespace mdabt;

namespace {

guest::GuestImage buildProgram() {
  using namespace guest;
  ProgramBuilder B("adaptive-phases");
  uint32_t Buf = B.dataReserve(4096 + 8, 8);
  uint32_t Slot = B.dataU32(Buf); // rebindable buffer pointer

  // Outer loop of 3000 iterations; at iteration 1500 the pointer is
  // rebound to Buf + 1.
  B.movri(6, 0);
  ProgramBuilder::Label Outer = B.here();
  ProgramBuilder::Label NoRebind = B.newLabel();
  B.cmpi(6, 1500);
  B.jcc(Cond::Ne, NoRebind);
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.addi(0, 1);
  B.stl(mem(3, 0), 0);
  B.bind(NoRebind);

  // Hot loop over the (re)bound buffer.
  B.movri(3, static_cast<int32_t>(Slot));
  B.ldl(0, mem(3, 0));
  B.movri(1, 0);
  ProgramBuilder::Label Hot = B.here();
  B.stl(memIdx(0, 1, 2, 0), 6);
  B.ldl(2, memIdx(0, 1, 2, 0));
  B.addi(1, 1);
  B.cmpi(1, 64);
  B.jcc(Cond::B, Hot);
  B.chk(2);

  // Mixed loop: alternates aligned/misaligned per iteration.
  B.movri(0, static_cast<int32_t>(Buf + 2048));
  B.movri(1, 0);
  ProgramBuilder::Label Mixed = B.here();
  B.movrr(5, 1);
  B.andi(5, 1); // bump = i & 1
  B.movrr(3, 0);
  B.add(3, 5);
  B.stl(memIdx(3, 1, 2, 0), 6);
  B.ldl(2, memIdx(3, 1, 2, 0));
  B.addi(1, 1);
  B.cmpi(1, 16);
  B.jcc(Cond::B, Mixed);
  B.chk(2);

  B.addi(6, 1);
  B.cmpi(6, 3000);
  B.jcc(Cond::B, Outer);
  B.halt();
  return B.build();
}

} // namespace

int main() {
  guest::GuestImage Image = buildProgram();
  using mda::MechanismKind;
  struct Row {
    const char *Label;
    mda::PolicySpec Spec;
  };
  const Row Rows[] = {
      {"DynamicProfiling@50 (trap forever)",
       {MechanismKind::DynamicProfiling, 50, false, 0, false}},
      {"ExceptionHandling (patch once)",
       {MechanismKind::ExceptionHandling, 50, false, 0, false}},
      {"EH + rearrangement",
       {MechanismKind::ExceptionHandling, 50, true, 0, false}},
      {"DPEH", {MechanismKind::Dpeh, 50, false, 0, false}},
      {"DPEH + retranslation", {MechanismKind::Dpeh, 50, false, 4, false}},
      {"DPEH + multi-version", {MechanismKind::Dpeh, 50, false, 0, true}},
  };

  std::printf("%-38s %14s %8s %8s %8s\n", "mechanism", "cycles", "traps",
              "patches", "retrans");
  uint64_t Checksum = 0;
  for (const Row &R : Rows) {
    std::unique_ptr<dbt::MdaPolicy> Policy = mda::makePolicy(R.Spec);
    dbt::Engine Engine(Image, *Policy);
    dbt::RunResult Result = Engine.run();
    reporting::checkRunCompleted(Result, R.Label);
    std::printf("%-38s %14s %8s %8s %8s\n", R.Label,
                withCommas(Result.Cycles).c_str(),
                withCommas(Result.Counters.get("dbt.fault_traps")).c_str(),
                withCommas(Result.Counters.get("dbt.patches")).c_str(),
                withCommas(Result.Counters.get("dbt.supersedes")).c_str());
    if (Checksum == 0)
      Checksum = Result.Checksum;
    else if (Checksum != Result.Checksum) {
      std::printf("CHECKSUM MISMATCH under %s!\n", R.Label);
      return 1;
    }
  }
  std::printf("\nAll mechanisms produced checksum %016llx\n",
              static_cast<unsigned long long>(Checksum));
  return 0;
}
