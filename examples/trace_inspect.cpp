//===- examples/trace_inspect.cpp - Trace timeline inspector --------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Load a JSONL trace (docs/TELEMETRY.md) and make the per-block
/// mechanism lifecycle of paper Fig. 5-8 directly visible:
///
///   trace_inspect [trace.jsonl] [--top N] [--block 0xPC]
///
/// With no trace file, runs a demo first: one EH-policy run of a
/// Table-I benchmark with the JSONL sink enabled, written to
/// trace_demo.jsonl (plus its metrics as trace_demo.metrics.json), then
/// inspects it.  Output:
///
///   - run summary (event totals per kind, virtual-time span);
///   - top-N trap-hot blocks (most trap.taken events);
///   - the full event timeline of the hottest block (or --block PC):
///     interpretation heating -> phase transition -> translation ->
///     traps -> stub patching -> rearrangement/retranslation.
///
//===----------------------------------------------------------------------===//

#include "analysis/AlignmentAnalysis.h"
#include "analysis/HostVerifier.h"
#include "dbt/FusionRules.h"
#include "mda/PolicyFactory.h"
#include "obs/TraceSink.h"
#include "reporting/Experiment.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace mdabt;

namespace {

/// Run one benchmark under the exception-handling policy with the JSONL
/// sink attached and return the trace path.
std::string runDemo() {
  const char *Name = "410.bwaves";
  const workloads::BenchmarkInfo *Info = workloads::findBenchmark(Name);
  if (!Info) {
    std::fprintf(stderr, "error: demo benchmark '%s' missing\n", Name);
    std::exit(1);
  }
  std::string Path = "trace_demo.jsonl";
  obs::JsonlTraceSink Sink(Path);
  if (!Sink.ok()) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    std::exit(1);
  }

  mda::PolicySpec Spec;
  Spec.Kind = mda::MechanismKind::ExceptionHandling;
  workloads::ScaleConfig Scale;
  Scale.TotalRefs = 400000;
  dbt::EngineConfig Config;
  Config.Trace = &Sink;
  // Exercise the analysis and verifier event kinds in the demo trace.
  Config.Analysis = true;
  Config.Verify = true;
  // And the hot-dispatch kinds (trace.formed / dispatch.ic_* fire only
  // when the mechanisms are on; they are architecturally invisible).
  Config.HashDispatch = true;
  Config.InlineCaches = true;
  Config.Superblocks = true;
  // Plus the fusion kinds (fusion.applied / fusion.summary).
  Config.Fusion = true;
  dbt::RunResult R =
      reporting::runPolicyChecked(*Info, Spec, Scale, Config);
  Sink.flush();
  reporting::writeMetricsJson(R, "trace_demo.metrics.json");
  std::printf("demo: %s under Exception Handling (analysis + verifier "
              "+ hot dispatch + fusion on) — %llu events -> %s, "
              "metrics -> trace_demo.metrics.json\n\n",
              Name, static_cast<unsigned long long>(Sink.written()),
              Path.c_str());
  return Path;
}

const char *shortName(obs::TraceEventKind K) {
  return obs::traceEventName(K);
}

/// Render the kind-specific payloads the way TELEMETRY.md defines them.
std::string payloadText(const obs::TraceEvent &E) {
  using K = obs::TraceEventKind;
  switch (E.Kind) {
  case K::BlockInterpreted:
    return format("insts=%llu heat=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::PhaseTransition:
    return format("heat=%llu", static_cast<unsigned long long>(E.A));
  case K::BlockTranslated:
    return format("insts=%llu gen=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::TrapTaken:
    return format("word=%llu block_faults=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::StubEmitted:
    return format("entry=%llu adaptive=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::PatchApplied:
    return format("word=%llu stub=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::BlockRetranslated:
    return format("gen=%llu flush=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::BlockInvalidated:
    return format("faults=%llu gen=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::LadderRung:
    return format("rung=%llu trips=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::AnalysisVerdict:
    return format("verdict=%s size=%llu store=%llu",
                  analysis::alignVerdictName(
                      static_cast<analysis::AlignVerdict>(E.A)),
                  static_cast<unsigned long long>(E.B & 0xff),
                  static_cast<unsigned long long>(E.B >> 8 & 1));
  case K::AnalysisSummary:
    return format("aligned=%llu mis=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::VerifyPass:
    return format("words=%llu regions=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::VerifyFail:
    return format("issue=%s aux=%llu",
                  analysis::verifyIssueKindName(
                      static_cast<analysis::VerifyIssueKind>(E.A)),
                  static_cast<unsigned long long>(E.B));
  case K::DispatchIcFill:
    return format("guard=%llu target_entry=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::DispatchIcEvict:
    return format("guard=%llu invalidate=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::TraceFormed:
    return format("blocks=%llu entry=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::TraceDeopt:
    return format("blocks=%llu gen=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  case K::FusionApplied:
    return format("rule=%s saved_words=%llu",
                  dbt::fusionRuleName(
                      static_cast<dbt::FusionRuleId>(E.A)),
                  static_cast<unsigned long long>(E.B));
  case K::FusionSummary:
    return format("sites=%llu saved_words=%llu",
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  default:
    return format("a=%llu b=%llu", static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  size_t TopN = 5;
  uint32_t FocusBlock = 0;
  bool HaveFocus = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--top") == 0 && I + 1 < Argc) {
      TopN = static_cast<size_t>(std::strtoul(Argv[++I], nullptr, 0));
    } else if (std::strcmp(Argv[I], "--block") == 0 && I + 1 < Argc) {
      FocusBlock =
          static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 0));
      HaveFocus = true;
    } else {
      Path = Argv[I];
    }
  }
  if (Path.empty())
    Path = runDemo();

  std::vector<obs::TraceEvent> Events;
  size_t BadLine = 0;
  if (!obs::readJsonlTrace(Path, Events, &BadLine)) {
    if (BadLine)
      std::fprintf(stderr, "error: %s: malformed event at line %zu\n",
                   Path.c_str(), BadLine);
    else
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return 1;
  }
  if (Events.empty()) {
    std::fprintf(stderr, "error: %s contains no events\n", Path.c_str());
    return 1;
  }

  // ---- run summary ----------------------------------------------------------
  uint64_t PerKind[obs::NumTraceEventKinds] = {};
  for (const obs::TraceEvent &E : Events)
    ++PerKind[static_cast<unsigned>(E.Kind)];
  std::printf("%s: %zu events, virtual time %s..%s cycles\n", Path.c_str(),
              Events.size(), withCommas(Events.front().VirtualTime).c_str(),
              withCommas(Events.back().VirtualTime).c_str());
  for (unsigned K = 0; K != obs::NumTraceEventKinds; ++K)
    if (PerKind[K])
      std::printf("  %-20s %s\n",
                  shortName(static_cast<obs::TraceEventKind>(K)),
                  withCommas(PerKind[K]).c_str());

  // ---- top-N trap-hot blocks ------------------------------------------------
  std::map<uint32_t, uint64_t> TrapsPerBlock;
  for (const obs::TraceEvent &E : Events)
    if (E.Kind == obs::TraceEventKind::TrapTaken)
      ++TrapsPerBlock[E.BlockPc];
  std::vector<std::pair<uint64_t, uint32_t>> Hot;
  for (const auto &KV : TrapsPerBlock)
    Hot.push_back({KV.second, KV.first});
  std::sort(Hot.rbegin(), Hot.rend());
  std::printf("\ntop %zu trap-hot blocks:\n", std::min(TopN, Hot.size()));
  for (size_t I = 0; I != Hot.size() && I != TopN; ++I)
    std::printf("  block 0x%04x  %s traps\n", Hot[I].second,
                withCommas(Hot[I].first).c_str());

  // ---- per-block lifecycle timeline -----------------------------------------
  if (!HaveFocus) {
    if (Hot.empty()) {
      std::printf("\nno traps in this trace; nothing to focus on "
                  "(use --block 0xPC to pick a block)\n");
      return 0;
    }
    FocusBlock = Hot.front().second;
  }
  std::printf("\nlifecycle of block 0x%04x:\n", FocusBlock);
  size_t Shown = 0, Interp = 0;
  for (const obs::TraceEvent &E : Events) {
    if (E.BlockPc != FocusBlock)
      continue;
    // Compress the heating phase: hundreds of block.interpreted events
    // say nothing individually.
    if (E.Kind == obs::TraceEventKind::BlockInterpreted) {
      ++Interp;
      continue;
    }
    if (Interp) {
      std::printf("  %14s  (%zu x block.interpreted — heating)\n", "",
                  Interp);
      Interp = 0;
    }
    std::printf("  t=%-12llu %-20s pc=0x%04x  %s\n",
                static_cast<unsigned long long>(E.VirtualTime),
                shortName(E.Kind), E.GuestPc, payloadText(E).c_str());
    ++Shown;
  }
  if (Interp)
    std::printf("  %14s  (%zu x block.interpreted)\n", "", Interp);
  if (Shown == 0)
    std::printf("  (no lifecycle events for this block)\n");
  return 0;
}
