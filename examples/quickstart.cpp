//===- examples/quickstart.cpp - MDABT in five minutes --------------------==//
//
// Part of the MDABT project (CGO 2009 MDA-handling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end tour of the public API:
///
///   1. assemble a guest (GX86) program whose hot loop performs
///      misaligned 4-byte accesses,
///   2. run it under the CrossBridge DBT with the paper's DPEH policy,
///   3. inspect the run: cycles, traps, patches, cache behaviour,
///   4. cross-check the result against the reference interpreter.
///
//===----------------------------------------------------------------------===//

#include "dbt/Engine.h"
#include "guest/Assembler.h"
#include "guest/Encoding.h"
#include "guest/Interpreter.h"
#include "mda/Policies.h"
#include "reporting/Experiment.h"

#include <cstdio>

using namespace mdabt;

int main() {
  // ---- 1. Assemble a guest program -----------------------------------------
  // for (i = 0; i < 100000; ++i) { buf[i % 64] = sum; sum += buf[i % 64]; }
  // with buf deliberately misaligned (base + 1), as an X86 compiler is
  // free to produce.
  guest::ProgramBuilder B("quickstart");
  uint32_t Buf = B.dataReserve(64 * 4 + 8, 8);
  B.movri(0, static_cast<int32_t>(Buf + 1)); // eax: misaligned base
  B.movri(1, 0);                             // ecx: i
  B.movri(2, 12345);                         // edx: sum
  guest::ProgramBuilder::Label Loop = B.here();
  B.movrr(3, 1);
  B.andi(3, 63);                       // ebx = i % 64
  B.stl(guest::memIdx(0, 3, 2, 0), 2); // buf[ebx] = sum   (misaligned!)
  B.ldl(5, guest::memIdx(0, 3, 2, 0)); // ebp = buf[ebx]
  B.add(2, 5);                         // sum += ebp
  B.add(2, 1);                         // sum += i (keep it non-degenerate)
  B.addi(1, 1);
  B.cmpi(1, 100000);
  B.jcc(guest::Cond::B, Loop);
  B.chk(2); // make the result observable
  B.halt();
  guest::GuestImage Image = B.build();

  std::printf("Guest program: %zu bytes of code, %zu bytes of data\n",
              Image.Code.size(), Image.Data.size());

  // Disassemble the first few instructions.
  std::printf("\nFirst instructions:\n");
  uint32_t Pc = Image.Entry;
  for (int I = 0; I != 5; ++I) {
    guest::GuestInst Inst;
    if (!guest::decode(Image.Code.data(), Image.Code.size(),
                       Pc - Image.CodeBase, Inst))
      break;
    std::printf("  %06x: %s\n", Pc,
                guest::disassemble(Inst, Pc).c_str());
    Pc += Inst.Length;
  }

  // ---- 2. Run under the DBT with the paper's DPEH policy -------------------
  mda::DpehPolicy Policy(/*Threshold=*/50);
  dbt::Engine Engine(Image, Policy);
  dbt::RunResult R = Engine.run();
  reporting::checkRunCompleted(R, "quickstart DPEH run");

  // ---- 3. Inspect the run ----------------------------------------------------
  std::printf("\nDPEH run: %s cycles, checksum %016llx\n",
              std::to_string(R.Cycles).c_str(),
              static_cast<unsigned long long>(R.Checksum));
  for (const auto &Entry : R.Counters.entries())
    std::printf("  %-22s %llu\n", Entry.first.c_str(),
                static_cast<unsigned long long>(Entry.second));

  // ---- 4. Cross-check against the interpreter ------------------------------
  guest::GuestMemory Mem;
  Mem.loadImage(Image);
  guest::GuestCPU Cpu;
  Cpu.reset(Image);
  guest::Interpreter Interp(Mem);
  Interp.run(Cpu);
  std::printf("\nInterpreter checksum %016llx -> %s\n",
              static_cast<unsigned long long>(Cpu.Checksum),
              Cpu.Checksum == R.Checksum ? "MATCH" : "MISMATCH");
  return Cpu.Checksum == R.Checksum ? 0 : 1;
}
